#include "core/ps_engine.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/proc_stats.h"
#include "common/stopwatch.h"
#include "core/hot_filter.h"
#include "obs/trace.h"
#include "partition/metis_partitioner.h"
#include "partition/partitioner.h"

namespace hetkg::core {

namespace {

/// Batches prefetched per refill when no DPS window drives prefetching.
constexpr size_t kRefillWindow = 32;
/// Modeled bookkeeping cost of prefetch counting, per counted access.
constexpr uint64_t kPrefetchFlopsPerAccess = 8;
/// Modeled cost of the filter's top-k selection, per candidate key.
constexpr uint64_t kFilterFlopsPerKey = 16;
/// Modeled optimizer cost per updated parameter.
constexpr uint64_t kUpdateFlopsPerParam = 6;

}  // namespace

std::string_view SystemKindName(SystemKind kind) {
  switch (kind) {
    case SystemKind::kHetKgCps:
      return "HET-KG-C";
    case SystemKind::kHetKgDps:
      return "HET-KG-D";
    case SystemKind::kDglKe:
      return "DGL-KE";
    case SystemKind::kPbg:
      return "PBG";
  }
  return "Unknown";
}

Result<SystemKind> ParseSystemKind(std::string_view name) {
  if (name == "hetkg-c" || name == "HET-KG-C" || name == "cps") {
    return SystemKind::kHetKgCps;
  }
  if (name == "hetkg-d" || name == "HET-KG-D" || name == "dps") {
    return SystemKind::kHetKgDps;
  }
  if (name == "dglke" || name == "DGL-KE") return SystemKind::kDglKe;
  if (name == "pbg" || name == "PBG") return SystemKind::kPbg;
  return Status::InvalidArgument("unknown system: " + std::string(name));
}

PsTrainingEngine::PsTrainingEngine(const TrainerConfig& config,
                                   SyncController sync,
                                   const graph::KnowledgeGraph& graph)
    : config_(config),
      sync_(sync),
      graph_(graph),
      cluster_(config.num_machines, config.network, config.compute),
      transport_(&cluster_, config.fault) {}

Result<std::unique_ptr<PsTrainingEngine>> PsTrainingEngine::Create(
    const TrainerConfig& config, const graph::KnowledgeGraph& graph,
    const std::vector<Triple>& train) {
  if (config.num_machines == 0) {
    return Status::InvalidArgument("need at least one machine");
  }
  if (train.empty()) {
    return Status::InvalidArgument("empty training set");
  }
  if (config.batch_size == 0) {
    return Status::InvalidArgument("batch_size must be positive");
  }
  HETKG_ASSIGN_OR_RETURN(SyncController sync,
                         SyncController::Create(config.sync));
  std::unique_ptr<PsTrainingEngine> engine(
      new PsTrainingEngine(config, sync, graph));
  HETKG_RETURN_IF_ERROR(engine->Setup(train));
  return engine;
}

std::string_view PsTrainingEngine::name() const {
  switch (sync_.config().strategy) {
    case CacheStrategy::kCps:
      return "HET-KG-C";
    case CacheStrategy::kDps:
      return "HET-KG-D";
    case CacheStrategy::kNone:
      return "DGL-KE";
  }
  return "Unknown";
}

Status PsTrainingEngine::Setup(const std::vector<Triple>& train) {
  // Kernel dispatch for the score/optimizer hot loops. Every path is
  // bit-identical (DESIGN.md §10), so this only affects speed.
  HETKG_ASSIGN_OR_RETURN(const embedding::kernels::KernelMode kernel_mode,
                         embedding::kernels::ParseKernelMode(config_.kernel));
  embedding::kernels::SetKernelMode(kernel_mode);
  embedding::kernels::LogDispatchOnce();

  // Scoring model and loss.
  HETKG_ASSIGN_OR_RETURN(
      score_fn_, embedding::MakeScoreFunction(config_.model, config_.dim));
  HETKG_ASSIGN_OR_RETURN(
      loss_fn_,
      embedding::MakeLossFunction(config_.loss, config_.margin,
                                  config_.negatives_per_positive));

  // Partition the training graph's entities across machines.
  HETKG_ASSIGN_OR_RETURN(
      graph::KnowledgeGraph train_graph,
      graph::KnowledgeGraph::Create(graph_.num_entities(),
                                    graph_.num_relations(), train,
                                    "train"));
  std::unique_ptr<partition::Partitioner> partitioner;
  if (config_.partitioner == "metis") {
    partition::MetisOptions options;
    options.seed = config_.seed;
    partitioner = std::make_unique<partition::MetisPartitioner>(options);
  } else if (config_.partitioner == "random") {
    partitioner = std::make_unique<partition::RandomPartitioner>(config_.seed);
  } else {
    return Status::InvalidArgument("unknown partitioner: " +
                                   config_.partitioner);
  }
  HETKG_ASSIGN_OR_RETURN(
      partition::PartitionResult parts,
      partitioner->Partition(train_graph, config_.num_machines));

  std::vector<std::vector<Triple>> worker_triples =
      partition::AssignTriples(train_graph, parts);
  // Tiny graphs can starve a worker; rebalance a triple over from the
  // fullest list so every worker has work.
  for (size_t w = 0; w < worker_triples.size(); ++w) {
    if (!worker_triples[w].empty()) continue;
    auto fullest = std::max_element(
        worker_triples.begin(), worker_triples.end(),
        [](const auto& a, const auto& b) { return a.size() < b.size(); });
    if (fullest->size() <= 1) {
      return Status::InvalidArgument(
          "training set too small for the machine count");
    }
    worker_triples[w].push_back(fullest->back());
    fullest->pop_back();
  }

  // Parameter server over the partition.
  ps::PsConfig ps_config;
  ps_config.num_entities = graph_.num_entities();
  ps_config.num_relations = graph_.num_relations();
  ps_config.entity_dim = config_.dim;
  ps_config.relation_dim = score_fn_->RelationDim(config_.dim);
  ps_config.learning_rate = config_.learning_rate;
  ps_config.normalize_entities = score_fn_->NormalizesEntities();
  ps_config.init_seed = config_.seed ^ 0xE1B0;
  ps_config.storage = config_.storage;
  HETKG_ASSIGN_OR_RETURN(
      server_, ps::ParameterServer::Create(ps_config,
                                           std::move(parts.entity_part),
                                           &cluster_, &transport_));
  server_->InitEmbeddings();
  lookup_ = PsEmbeddingLookup(server_.get());
  local_backend_ =
      std::make_unique<LocalPsBackend>(server_.get(), &cluster_);
  backend_ = local_backend_.get();

  // Workers, one per machine.
  const FilterQuota quota = ComputeQuota(
      FilterOptions{config_.cache_capacity, config_.cache_entity_ratio,
                    config_.heterogeneity_aware},
      graph_.num_entities(), graph_.num_relations());
  workers_.resize(config_.num_machines);
  train_degrees_ = config_.degree_weighted_negatives
                       ? train_graph.EntityDegrees()
                       : std::vector<uint32_t>{};
  Rng seeder(config_.seed ^ 0x5EED);
  for (uint32_t m = 0; m < config_.num_machines; ++m) {
    Worker& w = workers_[m];
    w.machine = m;
    w.triples = std::move(worker_triples[m]);
    w.sampler_seed = seeder.NextUint64();
    HETKG_ASSIGN_OR_RETURN(
        w.sampler,
        embedding::MakeNegativeSampler(SamplerSpecFor(w.sampler_seed)));
    w.prefetch_seed = seeder.NextUint64();
    w.prefetcher = std::make_unique<Prefetcher>(
        &w.triples, config_.batch_size, w.sampler.get(), w.prefetch_seed);
    if (sync_.config().strategy != CacheStrategy::kNone) {
      w.cache = std::make_unique<HotEmbeddingTable>(
          quota.entity_slots, quota.relation_slots, config_.dim,
          ps_config.relation_dim, config_.learning_rate);
    }
    iterations_per_epoch_ =
        std::max(iterations_per_epoch_, w.prefetcher->IterationsPerEpoch());
  }

  // Intra-batch compute fan-out. Sampling, prefetching, and simulation
  // accounting stay single-threaded; only the per-batch forward/backward
  // math runs on the pool, with an ordered reduction that keeps results
  // bit-identical at any thread count.
  if (config_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(config_.num_threads);
  }

  obs_active_ = config_.obs.Enabled();

  // Pipeline plumbing (DESIGN.md §12). Deterministic mode ticks the
  // stages inline through capacity-1 queues (a rendezvous per
  // iteration); --async threads them, with enough queue slack for the
  // staleness window's worth of in-flight iterations.
  async_mode_ = sync_.AsyncPipeline();
  const size_t depth =
      async_mode_
          ? std::clamp<size_t>(
                (sync_.PipelineStaleness() + 2) * workers_.size(), 2, 64)
          : 1;
  q_sample_pull_ = std::make_unique<BoundedQueue<StepTask*>>(depth);
  q_pull_compute_ = std::make_unique<BoundedQueue<StepTask*>>(depth);
  q_compute_push_ = std::make_unique<BoundedQueue<StepTask*>>(depth);

  // Checkpoint directory: create, and sweep temp files orphaned by a
  // crashed writer (they are never referenced by the manifest).
  if (!config_.checkpoint_dir.empty()) {
    ckpt_manager_ = std::make_unique<CheckpointManager>(
        config_.checkpoint_dir, config_.keep_checkpoints,
        config_.checkpoint_fsync);
    HETKG_ASSIGN_OR_RETURN(const size_t orphan_temps,
                           ckpt_manager_->Prepare());
    if (orphan_temps > 0) {
      recovery_metrics_.Increment(metric::kCheckpointOrphanTemps,
                                  orphan_temps);
    }
  }
  return Status::OK();
}

embedding::NegativeSamplerSpec PsTrainingEngine::SamplerSpecFor(
    uint64_t seed) const {
  embedding::NegativeSamplerSpec spec;
  spec.name = config_.negative_sampler;
  spec.num_entities = graph_.num_entities();
  spec.negatives_per_positive = config_.negatives_per_positive;
  spec.chunk_size = config_.negative_chunk_size;
  spec.seed = seed;
  spec.relation_corruption_prob = config_.relation_corruption_prob;
  spec.num_relations = graph_.num_relations();
  if (config_.degree_weighted_negatives) {
    spec.entity_degrees = &train_degrees_;
  }
  return spec;
}

uint64_t PsTrainingEngine::CollectHotSetPlan(Worker* w, bool whole_epoch,
                                             FrequencyMap* freq) {
  if (whole_epoch) {
    // CPS: count one full pass over the local subgraph; the counted
    // samples are statistically identical to (though not literally) the
    // trained ones, which an epoch-scale preload buffer could not hold.
    return w->prefetcher->PrefetchCountOnly(
        w->prefetcher->IterationsPerEpoch(), freq);
  }
  // DPS: the next D batches are both counted and queued for training.
  PrefetchWindow window = w->prefetcher->Prefetch(sync_.config().dps_window);
  *freq = std::move(window.frequencies);
  for (auto& batch : window.batches) {
    w->batch_queue.push_back(std::move(batch));
  }
  return window.total_accesses;
}

void PsTrainingEngine::ApplyHotSet(Worker* w, size_t iter,
                                   const FrequencyMap& freq,
                                   uint64_t accesses) {
  obs::TraceSpan span("cache.rebuild", "cache");
  const FilterOptions options{config_.cache_capacity,
                              config_.cache_entity_ratio,
                              config_.heterogeneity_aware};
  const FilterQuota quota{w->cache->entity_slots(),
                          w->cache->relation_slots()};
  const std::vector<EmbKey> hot = FilterHotKeys(freq, options, quota);
  const std::vector<EmbKey> admitted = w->cache->Assign(hot);
  span.Arg("candidates", static_cast<double>(freq.size()));
  span.Arg("admitted", static_cast<double>(admitted.size()));
  // Staleness clocks: evicted keys drop their entries; admitted keys
  // are anchored at this iteration (their values are pulled below);
  // retained keys keep their existing anchors.
  for (auto it = w->last_refresh.begin(); it != w->last_refresh.end();) {
    if (!w->cache->Contains(it->first)) {
      it = w->last_refresh.erase(it);
    } else {
      ++it;
    }
  }
  for (EmbKey key : admitted) {
    w->last_refresh[key] = iter;
  }

  // Charge the modeled bookkeeping cost of prefetch + filter.
  backend_->RecordCompute(w->machine,
                          accesses * kPrefetchFlopsPerAccess +
                              freq.size() * kFilterFlopsPerKey);
  backend_->IncrementServerMetric(metric::kCacheRebuilds, 1);

  // Pull values for newly admitted rows.
  if (!admitted.empty()) {
    if (config_.storage.enabled) {
      // Hot promotion (DESIGN.md §16): fault the admitted rows' cold
      // pages in before the batched pull decodes them, and count the
      // promotions (cold tier -> fp32 cache) for the tier.* gauges.
      backend_->AdviseHotKeys(admitted);
      tier_promotions_ += admitted.size();
    }
    rebuild_pull_spans_.clear();
    for (EmbKey key : admitted) {
      rebuild_pull_spans_.push_back(w->cache->Row(key));
    }
    const ps::PullResult pull =
        backend_->PullBatch(w->machine, admitted, rebuild_pull_spans_);
    // A newly admitted row has no stale copy to fall back on, so a
    // failed construction pull takes the degraded-read path: fill from
    // the global table directly (modeling the value arriving late,
    // outside the accounted fast path).
    for (uint32_t idx : pull.failed) {
      backend_->ReadRow(admitted[idx], rebuild_pull_spans_[idx]);
      backend_->IncrementServerMetric(metric::kTransportDegradedReads, 1);
      obs::Tracer::Instant("net.degraded_read", "net", "key",
                           static_cast<double>(admitted[idx]));
    }
  }
}

void PsTrainingEngine::ConstructHotSet(Worker* w, bool whole_epoch,
                                       size_t iter) {
  FrequencyMap freq;
  const uint64_t accesses = CollectHotSetPlan(w, whole_epoch, &freq);
  ApplyHotSet(w, iter, freq, accesses);
}

void PsTrainingEngine::FlushPendingGradients(Worker* w) {
  if (w->pending_grads.empty()) return;
  std::vector<EmbKey> keys;
  std::vector<std::span<const float>> grads;
  keys.reserve(w->pending_grads.size());
  grads.reserve(w->pending_grads.size());
  for (const auto& [key, grad] : w->pending_grads) {
    keys.push_back(key);
    grads.emplace_back(grad.data(), grad.size());
  }
  backend_->PushGradBatch(w->machine, keys, grads);
  backend_->IncrementServerMetric(metric::kWriteBackFlushes, 1);
  w->pending_grads.clear();
}

void PsTrainingEngine::HandleFailedPulls(
    Worker* w, size_t iter, std::span<const EmbKey> keys,
    std::span<const std::span<float>> spans,
    std::span<const uint32_t> failed) {
  const bool on_access_refresh =
      w->cache != nullptr &&
      sync_.config().refresh_mode == RefreshMode::kOnAccess;
  for (uint32_t idx : failed) {
    const EmbKey key = keys[idx];
    if (w->cache != nullptr && w->cache->Contains(key)) {
      // A refresh that never arrived: the worker keeps serving the
      // stale cached copy. Staleness degrades gracefully — each lost
      // refresh round adds one more P window to the row's worst-case
      // lag (SyncController::DegradedMaxStaleness).
      backend_->IncrementServerMetric(metric::kTransportStaleServes, 1);
      obs::Tracer::Instant("net.stale_serve", "net", "key",
                           static_cast<double>(key));
      if (on_access_refresh) {
        // Re-stale the anchor so the very next access retries the
        // refresh instead of waiting another P iterations.
        const size_t bound = sync_.config().staleness_bound;
        w->last_refresh[key] = iter >= bound ? iter - bound : 0;
      }
    } else {
      // A cold miss has no cached fallback; take the degraded read so
      // the iteration can proceed with a live value.
      backend_->ReadRow(key, spans[idx]);
      backend_->IncrementServerMetric(metric::kTransportDegradedReads, 1);
      obs::Tracer::Instant("net.degraded_read", "net", "key",
                          static_cast<double>(key));
    }
  }
}

uint64_t PsTrainingEngine::FillBatchQueue(Worker* w) {
  if (!w->batch_queue.empty()) return 0;
  const size_t window = sync_.config().strategy == CacheStrategy::kDps
                            ? sync_.config().dps_window
                            : kRefillWindow;
  PrefetchWindow prefetched = w->prefetcher->Prefetch(window);
  if (config_.storage.enabled) {
    // Upcoming pulls are now known exactly; start faulting their cold
    // pages in while this window trains (advisory — no result change).
    backend_->AdviseHotKeys(WindowKeys(prefetched));
  }
  for (auto& batch : prefetched.batches) {
    w->batch_queue.push_back(std::move(batch));
  }
  return prefetched.total_accesses;
}

void PsTrainingEngine::RunSampleStage(StepTask* task) {
  obs::TraceSpan span("pipeline.sample", "pipeline");
  span.Arg("iter", static_cast<double>(task->iter));
  span.Arg("machine", static_cast<double>(task->w->machine));
  Worker* w = task->w;
  const size_t iter = task->iter;
  if (w->cache != nullptr) {
    // Algorithm 3 lines 5-7: (re)construct when the fetch threshold D
    // is reached. Only the prefetcher-side counting runs here; the
    // PS-side filter/assign/pull half waits for the pull stage, so the
    // sample thread never touches shared PS state.
    const size_t write_back = sync_.config().write_back_period;
    task->flush_writeback = write_back > 1 && iter % write_back == 0;
    if (iter == 0) {
      task->rebuild = true;
      task->whole_epoch = sync_.config().strategy == CacheStrategy::kCps;
      task->rebuild_accesses =
          CollectHotSetPlan(w, task->whole_epoch, &task->rebuild_freq);
    } else if (sync_.ShouldRebuild(iter)) {
      task->rebuild = true;
      task->rebuild_accesses =
          CollectHotSetPlan(w, false, &task->rebuild_freq);
    }
  }
  task->refill_accesses = FillBatchQueue(w);
  task->batch = std::move(w->batch_queue.front());
  w->batch_queue.pop_front();
}

void PsTrainingEngine::RunPullStage(StepTask* task) {
  obs::TraceSpan span("pipeline.pull", "pipeline");
  span.Arg("iter", static_cast<double>(task->iter));
  span.Arg("machine", static_cast<double>(task->w->machine));
  Worker* w = task->w;
  const size_t iter = task->iter;
  // Per-phase simulated time: sample this machine's modeled clock
  // around each phase (deterministic mode only — the scheduling thread
  // owns obs_metrics_; async stall profiles come from the pipeline.*
  // counters instead). The deltas are pure functions of the recorded
  // byte/flop counts, so the gauges they feed are deterministic at any
  // thread count.
  const bool obs = obs_active_ && !async_mode_;
  double phase_mark =
      obs ? cluster_.MachineTime(w->machine).total_seconds() : 0.0;
  auto account = [&](double* bucket) {
    if (!obs) return;
    const double now = cluster_.MachineTime(w->machine).total_seconds();
    *bucket += now - phase_mark;
    phase_mark = now;
  };

  const bool has_cache = w->cache != nullptr;
  if (task->flush_writeback) {
    FlushPendingGradients(w);
  }
  if (task->rebuild) {
    // The rebuild may evict rows whose pending gradients would
    // otherwise be dropped (iteration 0 has none to flush).
    if (iter != 0) FlushPendingGradients(w);
    ApplyHotSet(w, iter, task->rebuild_freq, task->rebuild_accesses);
  }
  account(&phase_.rebuild);
  if (task->refill_accesses > 0) {
    backend_->RecordCompute(w->machine,
                            task->refill_accesses * kPrefetchFlopsPerAccess);
  }
  account(&phase_.prefetch);

  // Resolve every required row ONCE: the batch's keys are sorted and
  // mapped to dense task indices, so the score/backward hot loops index
  // spans directly instead of paying a hash lookup per access. Every
  // row — cached or pulled — lands in the task's private value buffer,
  // so the compute stage reads no shared storage.
  task->keys = BatchKeys(task->batch);
  std::sort(task->keys.begin(), task->keys.end());  // Determinism.
  const size_t num_keys = task->keys.size();
  task->missing.clear();
  task->pull_spans.clear();
  task->row_spans.resize(num_keys);
  task->grad_offsets.resize(num_keys + 1);

  size_t grad_floats = 0;
  for (size_t k = 0; k < num_keys; ++k) {
    grad_floats += server_->RowDim(task->keys[k]);
    task->grad_offsets[k + 1] = grad_floats;
  }
  task->grad_offsets[0] = 0;
  task->grads.assign(grad_floats, 0.0f);
  task->values.resize(grad_floats);

  const bool on_access_refresh =
      has_cache &&
      sync_.config().refresh_mode == RefreshMode::kOnAccess;
  uint64_t refreshed_rows = 0;
  for (size_t k = 0; k < num_keys; ++k) {
    const EmbKey key = task->keys[k];
    const std::span<float> dest(
        task->values.data() + task->grad_offsets[k],
        task->grad_offsets[k + 1] - task->grad_offsets[k]);
    task->row_spans[k] = dest;
    if (has_cache && w->cache->Contains(key)) {
      ++w->hits;
      if (on_access_refresh) {
        // Fine-grained staleness: re-pull this row if its last refresh
        // is older than P iterations. The refresh targets the cache's
        // row; the private copy below picks up the refreshed bits.
        auto [it, inserted] = w->last_refresh.try_emplace(key, iter);
        if (!inserted &&
            iter - it->second >= sync_.config().staleness_bound) {
          it->second = iter;
          task->missing.push_back(key);
          task->pull_spans.push_back(w->cache->Row(key));
          ++refreshed_rows;
        }
      }
    } else {
      ++w->misses;
      task->missing.push_back(key);
      task->pull_spans.push_back(dest);
    }
  }
  if (refreshed_rows > 0) {
    backend_->IncrementServerMetric(metric::kCacheRefreshRows,
                                    refreshed_rows);
  }
  // Algorithm 3 lines 8-9: when the sync threshold P is reached, the
  // latest versions of ALL cached hot-embeddings are pulled, bounding
  // staleness by P. The refresh rides the iteration's pull batch so it
  // costs bytes but no extra round-trips. (kOnAccess mode instead
  // refreshed the stale rows inline above.)
  if (has_cache && !on_access_refresh && iter != 0 &&
      sync_.ShouldRefresh(iter)) {
    FlushPendingGradients(w);
    const std::vector<EmbKey> cached = w->cache->Keys();
    for (EmbKey key : cached) {
      task->missing.push_back(key);
      task->pull_spans.push_back(w->cache->Row(key));
    }
    backend_->IncrementServerMetric(metric::kCacheRefreshRows,
                                    cached.size());
  }
  if (!task->missing.empty()) {
    const ps::PullResult pull =
        backend_->PullBatch(w->machine, task->missing, task->pull_spans);
    if (!pull.failed.empty()) {
      HandleFailedPulls(w, iter, task->missing, task->pull_spans,
                        pull.failed);
    }
  }
  // Publish the cache's rows (post-refresh) into the task's private
  // buffer. A float copy is bit-exact, so deterministic-mode results
  // are identical to reading the cache in place; in async mode it keeps
  // the compute stage from racing a concurrent push-stage update.
  if (has_cache) {
    for (size_t k = 0; k < num_keys; ++k) {
      const EmbKey key = task->keys[k];
      if (!w->cache->Contains(key)) continue;
      const std::span<const float> row = w->cache->Row(key);
      std::copy(row.begin(), row.end(), task->row_spans[k].begin());
    }
  }
  if (obs) {
    const double before = phase_mark;
    account(&phase_.pull);
    obs_metrics_.Observe(metric::kPullSimSeconds, phase_mark - before);
  }
}

void PsTrainingEngine::RunComputeStage(StepTask* task) {
  obs::TraceSpan span("pipeline.compute", "pipeline");
  span.Arg("iter", static_cast<double>(task->iter));
  span.Arg("machine", static_cast<double>(task->w->machine));
  Worker* w = task->w;
  const MiniBatch& batch = task->batch;
  const bool obs = obs_active_ && !async_mode_;
  double phase_mark =
      obs ? cluster_.MachineTime(w->machine).total_seconds() : 0.0;

  // Forward + backward over all (positive, negative) pairs: resolve the
  // batch's triples to dense key indices once, then run the
  // deterministic chunked executor (parallel when a pool is configured,
  // bit-identical either way).
  auto key_index = [&](EmbKey key) -> uint32_t {
    return static_cast<uint32_t>(
        std::lower_bound(task->keys.begin(), task->keys.end(), key) -
        task->keys.begin());
  };
  task->positives.resize(batch.positives.size());
  for (size_t i = 0; i < batch.positives.size(); ++i) {
    const Triple& t = batch.positives[i];
    task->positives[i] = ResolvedTriple{key_index(EntityKey(t.head)),
                                        key_index(RelationKey(t.relation)),
                                        key_index(EntityKey(t.tail))};
  }
  task->pairs.resize(batch.negatives.size());
  for (size_t i = 0; i < batch.negatives.size(); ++i) {
    const auto& neg = batch.negatives[i];
    task->pairs[i].positive_index = neg.positive_index;
    task->pairs[i].negative =
        ResolvedTriple{key_index(EntityKey(neg.triple.head)),
                       key_index(RelationKey(neg.triple.relation)),
                       key_index(EntityKey(neg.triple.tail))};
  }

  const BatchStats stats = scorer_.Run(
      *score_fn_, *loss_fn_, task->positives, task->pairs, task->row_spans,
      task->grad_offsets, task->grads, &task->pos_scores, pool_.get());

  const uint64_t score_flops = score_fn_->FlopsPerTriple(config_.dim);
  const uint64_t flops = (batch.positives.size() + batch.negatives.size() +
                          stats.backward_calls) *
                         score_flops / 2;
  if (async_mode_) {
    // Only the sim accounting touches shared state on this stage.
    std::lock_guard<std::mutex> lock(ps_mu_);
    backend_->RecordCompute(w->machine, flops);
  } else {
    backend_->RecordCompute(w->machine, flops);
    if (obs) {
      const double now = cluster_.MachineTime(w->machine).total_seconds();
      phase_.compute += now - phase_mark;
    }
  }
  task->loss_sum = stats.loss_sum;
  task->pair_count = stats.pairs;
}

void PsTrainingEngine::RunPushStage(StepTask* task) {
  obs::TraceSpan span("pipeline.push", "pipeline");
  span.Arg("iter", static_cast<double>(task->iter));
  span.Arg("machine", static_cast<double>(task->w->machine));
  Worker* w = task->w;
  const bool obs = obs_active_ && !async_mode_;
  double phase_mark =
      obs ? cluster_.MachineTime(w->machine).total_seconds() : 0.0;

  // Local cache update for hot rows, then push the gradients of this
  // iteration to the PS (step 4 of Hot-Embedding Oriented Training).
  // Keys whose gradient is identically zero (margin satisfied for every
  // pair touching them, Algorithm 3 line 17) produce no update and are
  // not pushed — matching sparse-gradient systems.
  const bool has_cache = w->cache != nullptr;
  const bool normalize = score_fn_->NormalizesEntities();
  const size_t num_keys = task->keys.size();
  std::vector<EmbKey> push_keys;
  std::vector<std::span<const float>> push_spans;
  push_keys.reserve(num_keys);
  push_spans.reserve(num_keys);
  uint64_t local_update_params = 0;
  for (size_t k = 0; k < num_keys; ++k) {
    const EmbKey key = task->keys[k];
    const std::span<float> g(
        task->grads.data() + task->grad_offsets[k],
        task->grad_offsets[k + 1] - task->grad_offsets[k]);
    bool nonzero = false;
    for (float v : g) {
      if (v != 0.0f) {
        nonzero = true;
        break;
      }
    }
    if (!nonzero) continue;
    if (has_cache && w->cache->Contains(key)) {
      w->cache->ApplyLocalGradient(key, g, normalize);
      local_update_params += g.size();
      if (sync_.config().write_back_period > 1) {
        // Write-back: accumulate locally; the flush pushes it later.
        auto [it, inserted] = w->pending_grads.try_emplace(key);
        if (inserted) {
          it->second.assign(g.begin(), g.end());
        } else {
          for (size_t j = 0; j < g.size(); ++j) {
            it->second[j] += g[j];
          }
        }
        continue;
      }
    }
    push_keys.push_back(key);
    push_spans.emplace_back(g.data(), g.size());
  }
  backend_->RecordCompute(w->machine,
                          local_update_params * kUpdateFlopsPerParam);
  if (!push_keys.empty()) {
    backend_->PushGradBatch(w->machine, push_keys, push_spans);
  }
  if (obs) {
    const double before = phase_mark;
    const double now = cluster_.MachineTime(w->machine).total_seconds();
    phase_.push += now - before;
    obs_metrics_.Observe(metric::kPushSimSeconds, now - before);
  }

  backend_->IncrementServerMetric(metric::kTriplesTrained,
                                  task->batch.positives.size());
  backend_->IncrementServerMetric(metric::kNegativesTrained,
                                  task->batch.negatives.size());
}

PsTrainingEngine::StepTask* PsTrainingEngine::AcquireTask() {
  std::lock_guard<std::mutex> lock(task_mu_);
  if (!free_tasks_.empty()) {
    StepTask* task = free_tasks_.back();
    free_tasks_.pop_back();
    return task;
  }
  task_pool_.push_back(std::make_unique<StepTask>());
  return task_pool_.back().get();
}

void PsTrainingEngine::ReleaseTask(StepTask* task) {
  std::lock_guard<std::mutex> lock(task_mu_);
  free_tasks_.push_back(task);
}

std::pair<double, uint64_t> PsTrainingEngine::Step(Worker* w, size_t iter) {
  obs::TraceSpan step_span("ps.step", "ps");
  step_span.Arg("iter", static_cast<double>(iter));
  step_span.Arg("machine", static_cast<double>(w->machine));
  // Deterministic mode: one task flows through the real bounded queues,
  // each stage ticked inline in pre-pipeline order — a rendezvous per
  // iteration, byte-identical to the former monolithic Step().
  StepTask* task = AcquireTask();
  task->Reset(w, iter);
  RunSampleStage(task);
  q_sample_pull_->Push(task);
  task = *q_sample_pull_->Pop();
  RunPullStage(task);
  q_pull_compute_->Push(task);
  task = *q_pull_compute_->Pop();
  RunComputeStage(task);
  q_compute_push_->Push(task);
  task = *q_compute_push_->Pop();
  RunPushStage(task);
  const std::pair<double, uint64_t> result{task->loss_sum,
                                           task->pair_count};
  ReleaseTask(task);
  return result;
}

// -- Async stage threads (DESIGN.md §12) ------------------------------------

bool PsTrainingEngine::SampleLoop() {
  if (sample_next_iter_ >= segment_end_ ||
      (sample_next_worker_ == 0 &&
       stop_feeding_.load(std::memory_order_acquire))) {
    q_sample_pull_->Close();
    return false;
  }
  Worker* w = &workers_[sample_next_worker_];
  StepTask* task = AcquireTask();
  task->Reset(w, sample_next_iter_);
  RunSampleStage(task);
  if (++sample_next_worker_ == workers_.size()) {
    sample_next_worker_ = 0;
    ++sample_next_iter_;
  }
  q_sample_pull_->Push(task);
  return true;
}

bool PsTrainingEngine::PullLoop() {
  std::optional<StepTask*> t = q_sample_pull_->Pop();
  if (!t.has_value()) {
    q_pull_compute_->Close();
    return false;
  }
  StepTask* task = *t;
  // HET-style bounded staleness: iteration i may pull only once
  // iteration i - N has fully pushed, so every row a batch reads lags
  // the server by at most N iterations (plus the configured cache
  // staleness P for cached rows).
  clock_.WaitAdmissible(task->iter, sync_.PipelineStaleness());
  const size_t completed = clock_.completed();
  const size_t lag = task->iter > completed ? task->iter - completed : 0;
  if (lag > max_observed_lag_) max_observed_lag_ = lag;
  {
    std::lock_guard<std::mutex> lock(ps_mu_);
    RunPullStage(task);
  }
  q_pull_compute_->Push(task);
  return true;
}

bool PsTrainingEngine::ComputeLoop() {
  std::optional<StepTask*> t = q_pull_compute_->Pop();
  if (!t.has_value()) {
    q_compute_push_->Close();
    return false;
  }
  RunComputeStage(*t);
  q_compute_push_->Push(*t);
  return true;
}

bool PsTrainingEngine::PushLoop() {
  std::optional<StepTask*> t = q_compute_push_->Pop();
  if (!t.has_value()) return false;
  StepTask* task = *t;
  {
    std::lock_guard<std::mutex> lock(ps_mu_);
    RunPushStage(task);
    if (transport_.HasDueProcessFaults()) {
      // Recovery needs a consistent barrier: tell the sample stage to
      // stop feeding at the next iteration boundary; the driver injects
      // the fault once the pipeline drains.
      stop_feeding_.store(true, std::memory_order_release);
    }
  }
  // This thread is the only accumulator while the pipeline runs; the
  // driver reads after Join().
  epoch_loss_sum_ += task->loss_sum;
  epoch_pair_count_ += task->pair_count;
  if (task->w->machine == workers_.size() - 1) {
    clock_.MarkCompleted(task->iter);
  }
  ReleaseTask(task);
  return true;
}

size_t PsTrainingEngine::RunAsyncSegment(size_t max_iters) {
  const size_t start = global_iteration_;
  segment_end_ = start + max_iters;
  sample_next_iter_ = start;
  sample_next_worker_ = 0;
  stop_feeding_.store(false, std::memory_order_release);
  clock_.Reset(start);
  q_sample_pull_->Reopen();
  q_pull_compute_->Reopen();
  q_compute_push_->Reopen();

  Pipeline pipeline;
  pipeline.AddStage("sample", [this] { return SampleLoop(); });
  pipeline.AddStage("pull", [this] { return PullLoop(); });
  pipeline.AddStage("compute", [this] { return ComputeLoop(); });
  pipeline.AddStage("push", [this] { return PushLoop(); });
  pipeline.Start();
  pipeline.Join();

  staleness_waits_total_ += clock_.waits();
  // Fold this segment's queue profile into the cross-segment totals
  // before Reopen() zeroes the per-queue counters.
  queue_stalls_total_ +=
      q_sample_pull_->push_stalls() + q_sample_pull_->pop_stalls() +
      q_pull_compute_->push_stalls() + q_pull_compute_->pop_stalls() +
      q_compute_push_->push_stalls() + q_compute_push_->pop_stalls();
  queue_high_water_sample_ =
      std::max(queue_high_water_sample_, q_sample_pull_->high_water());
  queue_high_water_compute_ =
      std::max(queue_high_water_compute_, q_pull_compute_->high_water());
  queue_high_water_push_ =
      std::max(queue_high_water_push_, q_compute_push_->high_water());
  // Reopen so the recovery replay path (which routes Step() through the
  // same queues) and the next segment find them usable.
  q_sample_pull_->Reopen();
  q_pull_compute_->Reopen();
  q_compute_push_->Reopen();
  // The sample stage only stops at iteration boundaries, and Join()
  // means every emitted task was pushed — so exactly the iterations
  // [start, sample_next_iter_) completed in full.
  global_iteration_ = sample_next_iter_;
  return sample_next_iter_ - start;
}

Status PsTrainingEngine::SyncAllWorkers() {
  if (step_driver_ == nullptr) return Status::OK();
  for (Worker& w : workers_) {
    HETKG_RETURN_IF_ERROR(step_driver_->SyncWorkerState(w.machine));
  }
  return Status::OK();
}

void PsTrainingEngine::TeardownPool() {
  // ~ThreadPool joins its threads, so after this the process is
  // single-threaded and safe to fork() under the sanitizers.
  pool_valid_options_aliased_ =
      valid_options_.pool != nullptr && valid_options_.pool == pool_.get();
  pool_.reset();
  if (pool_valid_options_aliased_) valid_options_.pool = nullptr;
}

void PsTrainingEngine::RebuildPool() {
  if (config_.num_threads > 1 && pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(config_.num_threads);
  }
  if (pool_valid_options_aliased_) valid_options_.pool = pool_.get();
}

void PsTrainingEngine::EnableValidation(const graph::KnowledgeGraph* graph,
                                        std::span<const Triple> valid,
                                        const eval::EvalOptions& options) {
  valid_graph_ = graph;
  valid_triples_ = valid;
  valid_options_ = options;
  // Reuse the training pool for the per-epoch validation rankings.
  if (valid_options_.pool == nullptr) {
    valid_options_.pool = pool_.get();
  }
}

double PsTrainingEngine::OverallHitRatio() const {
  const uint64_t total = total_hits_ + total_misses_;
  return total == 0 ? 0.0
                    : static_cast<double>(total_hits_) /
                          static_cast<double>(total);
}

MetricRegistry PsTrainingEngine::CollectObsMetrics(double sim_seconds) const {
  MetricRegistry m;
  m.Merge(server_->metrics());
  // Fault-free transports never touch a counter, so this merge leaves
  // plain reports byte-identical to the perfect-network behaviour.
  m.Merge(transport_.metrics());
  // Same contract: checkpoint.saves/bytes and recovery.* exist only
  // when checkpointing or process faults are configured.
  m.Merge(engine_metrics_);
  uint64_t hits = total_hits_;
  uint64_t misses = total_misses_;
  for (const Worker& w : workers_) {
    hits += w.hits;
    misses += w.misses;
  }
  m.Increment(metric::kCacheHits, hits);
  m.Increment(metric::kCacheMisses, misses);
  if (obs_active_) {
    m.Merge(obs_metrics_);
    // Process runtime: the driver's merged never-serialized metrics —
    // transport histograms plus each worker's shipped registry (with
    // per-worker *.w<id> gauge breakdowns).
    if (step_driver_ != nullptr) {
      const MetricRegistry* driver_metrics = step_driver_->ObsMetrics();
      if (driver_metrics != nullptr) m.Merge(*driver_metrics);
    }
    // Locally dropped trace events (workers ship theirs in their
    // registries, merged above).
    if (obs::Tracer::Enabled()) {
      const uint64_t dropped = obs::Tracer::DroppedEvents();
      if (dropped > 0) m.Increment(metric::kTraceDroppedEvents, dropped);
    }
    m.SetGauge(metric::kCacheHitRatio,
               (hits + misses) == 0
                   ? 0.0
                   : static_cast<double>(hits) /
                         static_cast<double>(hits + misses));
    m.SetGauge(metric::kSimSeconds, sim_seconds);
    m.SetGauge(metric::kPhasePrefetchSeconds, phase_.prefetch);
    m.SetGauge(metric::kPhaseRebuildSeconds, phase_.rebuild);
    m.SetGauge(metric::kPhasePullSeconds, phase_.pull);
    m.SetGauge(metric::kPhaseComputeSeconds, phase_.compute);
    m.SetGauge(metric::kPhasePushSeconds, phase_.push);
    m.SetGauge(metric::kKernelDispatch, embedding::kernels::DispatchGauge());
  }
  // Pipeline stall/depth profile — async mode only. These depend on
  // real thread scheduling, so the deterministic mode (whose reports
  // are bit-identity-checked) never emits them.
  if (async_mode_) {
    // The per-queue counters reset on every segment Reopen(), so the
    // profile comes from the cross-segment accumulators RunAsyncSegment
    // folds in at each drain barrier.
    m.Increment(metric::kPipelineStalls, queue_stalls_total_);
    m.Increment(metric::kPipelineStalenessWaits, staleness_waits_total_);
    m.SetGauge(metric::kPipelineQueueDepthSample,
               static_cast<double>(queue_high_water_sample_));
    m.SetGauge(metric::kPipelineQueueDepthCompute,
               static_cast<double>(queue_high_water_compute_));
    m.SetGauge(metric::kPipelineQueueDepthPush,
               static_cast<double>(queue_high_water_push_));
    m.SetGauge(metric::kPipelineMaxRowLag,
               static_cast<double>(max_observed_lag_));
  }
  // Tiered storage (DESIGN.md §16): cold-tier traffic + memory gauges.
  // Counters live in the table/engine (never in the serialized server
  // metrics), so tiered snapshots stay comparable to in-RAM ones; the
  // gauges appear only under --storage=tiered.
  if (config_.storage.enabled && server_ != nullptr) {
    m.Increment(metric::kTierColdReads, server_->TierColdReads());
    m.Increment(metric::kTierPromotions, tier_promotions_);
    m.SetGauge(metric::kTierBytesMapped,
               static_cast<double>(server_->TierBytesMapped()));
    m.SetGauge(metric::kMemRssBytes,
               static_cast<double>(CurrentRssBytes()));
  }
  return m;
}

Result<TrainReport> PsTrainingEngine::Train(size_t num_epochs) {
  if (step_driver_ == nullptr) return TrainInner(num_epochs);
  // Process runtime (DESIGN.md §13). The step driver services worker
  // RPCs strictly in sim order, which is only well-defined for the
  // deterministic scheduler, and real worker processes make the sim's
  // scheduled process faults redundant — real SIGKILLs replace them.
  if (async_mode_) {
    return Status::InvalidArgument(
        "--runtime=proc requires the deterministic scheduler (drop --async)");
  }
  if (!config_.fault.process_faults.empty()) {
    return Status::InvalidArgument(
        "--runtime=proc replaces simulated process faults with real worker "
        "kills (drop --fault_process)");
  }
  for (;;) {
    Result<TrainReport> report = TrainInner(num_epochs);
    if (report.ok() || !step_driver_->WorkerFailed()) return report;
    // A worker process died mid-run. Recovery is a full rewind: every
    // surviving process is discarded too, the coordinator restores the
    // latest HETKGCK2 snapshot (the exact state a sim-mode halt/resume
    // would restore), re-forks the fleet from it, and TrainInner
    // continues down the proven resume path — so the final bytes match
    // an uninterrupted run.
    recovery_metrics_.Increment(metric::kRecoveryWorkerCrashes);
    const Status restored = RestoreTrainState(config_.checkpoint_dir);
    if (!restored.ok()) {
      return Status::FailedPrecondition(
          "worker process died and no checkpoint is restorable: " +
          restored.ToString());
    }
    HETKG_RETURN_IF_ERROR(step_driver_->RestartWorkers());
  }
}

Result<TrainReport> PsTrainingEngine::TrainInner(size_t num_epochs) {
  // Start a tracing session when the config asks for one and the
  // embedding binary didn't already; the lease stops it (writing the
  // file) on every exit path, including early error returns.
  obs::TracerLease trace_lease{obs::TraceOptions{config_.obs.trace_out}};
  const bool metrics_on = config_.obs.MetricsRequested();
  Stopwatch train_wall;
  // Process runtime: arm the workers' per-process tracers/transport
  // profiling and run the clock-offset handshake (DESIGN.md §14). Must
  // follow the lease above — the handshake reads this session's clock.
  if (step_driver_ != nullptr && config_.obs.Enabled()) {
    HETKG_RETURN_IF_ERROR(step_driver_->SetupObs());
  }

  TrainReport report;
  size_t start_epoch = 0;
  size_t resume_iter = 0;
  bool resuming = false;
  if (resume_pending_) {
    // Continue the restored run: `num_epochs` counts from the start of
    // training, and the snapshot's global iteration places us inside
    // (or, for a snapshot taken right after an epoch's last iteration,
    // at the still-pending boundary of) an epoch. The restored cluster
    // clocks and loss accumulators continue that epoch bit-identically.
    resume_pending_ = false;
    resuming = true;
    if (global_iteration_ > 0 &&
        global_iteration_ % iterations_per_epoch_ == 0) {
      start_epoch = global_iteration_ / iterations_per_epoch_ - 1;
      resume_iter = iterations_per_epoch_;
    } else {
      start_epoch = global_iteration_ / iterations_per_epoch_;
      resume_iter = global_iteration_ % iterations_per_epoch_;
    }
  } else {
    cumulative_seconds_ = 0.0;
  }
  for (size_t epoch = start_epoch; epoch < num_epochs; ++epoch) {
    obs::TraceSpan epoch_span("ps.epoch", "ps");
    epoch_span.Arg("epoch", static_cast<double>(epoch));
    size_t iter_begin = 0;
    if (resuming) {
      resuming = false;
      iter_begin = resume_iter;
    } else {
      cluster_.Reset();
      epoch_loss_sum_ = 0.0;
      epoch_pair_count_ = 0;
    }

    Stopwatch wall;
    // Trace counter tracks + periodic metric samples, shared by both
    // engine modes. `boundary` is the epoch-relative iteration just
    // finished; in async mode these run only at drain barriers.
    auto publish_trace_counters = [&] {
      if (!obs::Tracer::Enabled()) return;
      obs::Tracer::PublishSimSeconds(cumulative_seconds_ +
                                     EpochCriticalPath().total_seconds());
      uint64_t hits = total_hits_;
      uint64_t misses = total_misses_;
      for (const Worker& w : workers_) {
        hits += w.hits;
        misses += w.misses;
      }
      obs::Tracer::Counter(
          "cache.hit_ratio",
          (hits + misses) == 0
              ? 0.0
              : static_cast<double>(hits) /
                    static_cast<double>(hits + misses));
      obs::Tracer::Counter(
          "net.remote_bytes",
          static_cast<double>(report.total_remote_bytes +
                              cluster_.TotalRemoteBytes()));
    };
    auto maybe_window_sample = [&](size_t boundary) {
      if (!metrics_on || config_.obs.metrics_window == 0 ||
          boundary % config_.obs.metrics_window != 0 ||
          boundary == iterations_per_epoch_) {
        return;
      }
      obs::MetricsSample sample;
      sample.kind = "window";
      sample.epoch = epoch;
      sample.iteration = boundary;
      sample.sim_seconds =
          cumulative_seconds_ + EpochCriticalPath().total_seconds();
      sample.wall_seconds = train_wall.ElapsedSeconds();
      sample.metrics = CollectObsMetrics(sample.sim_seconds);
      report.metrics_series.Add(std::move(sample));
    };
    auto halt_report = [&]() -> TrainReport {
      // Testing hook simulating a hard crash: stop mid-run without
      // the epoch-boundary flush or report. The partial report only
      // exists so callers can observe how far the run got.
      report.overall_hit_ratio = OverallHitRatio();
      report.metrics = CollectObsMetrics(
          cumulative_seconds_ + EpochCriticalPath().total_seconds());
      return report;
    };

    if (!async_mode_) {
      for (size_t i = iter_begin; i < iterations_per_epoch_; ++i) {
        HETKG_RETURN_IF_ERROR(MaybeInjectProcessFaults());
        for (Worker& w : workers_) {
          if (step_driver_ != nullptr) {
            // Process runtime: the step executes in the worker's own
            // process; its PS/cluster RPCs land here in sim order.
            HETKG_ASSIGN_OR_RETURN(
                const auto result,
                step_driver_->DriveStep(w.machine, global_iteration_));
            epoch_loss_sum_ += result.first;
            epoch_pair_count_ += result.second;
          } else {
            const auto [loss, pairs] = Step(&w, global_iteration_);
            epoch_loss_sum_ += loss;
            epoch_pair_count_ += pairs;
          }
        }
        ++global_iteration_;
        publish_trace_counters();
        maybe_window_sample(i + 1);
        if (ckpt_manager_ != nullptr && config_.checkpoint_every > 0 &&
            global_iteration_ % config_.checkpoint_every == 0) {
          HETKG_RETURN_IF_ERROR(WritePeriodicCheckpoint());
        }
        if (config_.halt_after_iterations > 0 &&
            global_iteration_ >= config_.halt_after_iterations) {
          HETKG_RETURN_IF_ERROR(SyncAllWorkers());
          if (step_driver_ != nullptr) {
            HETKG_RETURN_IF_ERROR(step_driver_->FlushObs());
          }
          return halt_report();
        }
      }
    } else {
      // Async mode: run the epoch as drained-pipeline segments. Every
      // iteration-boundary obligation — fault injection, checkpoints,
      // the halt hook, metric windows — becomes a segment barrier, so
      // each one still observes fully consistent engine state.
      size_t i = iter_begin;
      while (i < iterations_per_epoch_) {
        HETKG_RETURN_IF_ERROR(MaybeInjectProcessFaults());
        if (config_.halt_after_iterations > 0 &&
            global_iteration_ >= config_.halt_after_iterations) {
          return halt_report();
        }
        size_t seg = iterations_per_epoch_ - i;
        if (ckpt_manager_ != nullptr && config_.checkpoint_every > 0) {
          seg = std::min(seg, config_.checkpoint_every -
                                  global_iteration_ %
                                      config_.checkpoint_every);
        }
        if (config_.halt_after_iterations > 0) {
          seg = std::min(seg, config_.halt_after_iterations -
                                  global_iteration_);
        }
        if (metrics_on && config_.obs.metrics_window > 0) {
          seg = std::min(seg, config_.obs.metrics_window -
                                  i % config_.obs.metrics_window);
        }
        i += RunAsyncSegment(seg);
        publish_trace_counters();
        maybe_window_sample(i);
        if (ckpt_manager_ != nullptr && config_.checkpoint_every > 0 &&
            global_iteration_ % config_.checkpoint_every == 0) {
          HETKG_RETURN_IF_ERROR(WritePeriodicCheckpoint());
        }
        if (config_.halt_after_iterations > 0 &&
            global_iteration_ >= config_.halt_after_iterations) {
          return halt_report();
        }
      }
    }
    // Epoch boundary: write-back gradients may not linger (validation
    // and checkpoints read the global tables). In the process runtime
    // each worker flushes from its own process (the pending gradients
    // live there) and reports its epoch hit/miss counters back into the
    // parent's worker mirrors so the harvest below sees them.
    if (step_driver_ != nullptr) {
      for (Worker& w : workers_) {
        HETKG_RETURN_IF_ERROR(step_driver_->DriveEpochEnd(w.machine));
      }
    } else {
      for (Worker& w : workers_) {
        FlushPendingGradients(&w);
      }
    }

    EpochReport er;
    er.epoch = epoch;
    er.mean_loss = epoch_pair_count_ == 0
                       ? 0.0
                       : epoch_loss_sum_ / epoch_pair_count_;
    er.epoch_time = EpochCriticalPath();
    cumulative_seconds_ += er.epoch_time.total_seconds();
    er.cumulative_seconds = cumulative_seconds_;
    er.wall_seconds = wall.ElapsedSeconds();
    uint64_t hits = 0;
    uint64_t misses = 0;
    for (Worker& w : workers_) {
      hits += w.hits;
      misses += w.misses;
      w.hits = 0;
      w.misses = 0;
    }
    total_hits_ += hits;
    total_misses_ += misses;
    er.cache_hit_ratio =
        (hits + misses) == 0
            ? 0.0
            : static_cast<double>(hits) / static_cast<double>(hits + misses);
    er.remote_bytes = cluster_.TotalRemoteBytes();
    report.total_remote_bytes += er.remote_bytes;
    report.total_time.compute_seconds += er.epoch_time.compute_seconds;
    report.total_time.comm_seconds += er.epoch_time.comm_seconds;
    report.total_time.overlap_seconds += er.epoch_time.overlap_seconds;
    report.total_wall_seconds += er.wall_seconds;

    if (valid_graph_ != nullptr && !valid_triples_.empty()) {
      HETKG_ASSIGN_OR_RETURN(
          er.valid_metrics,
          eval::EvaluateLinkPrediction(lookup_, *score_fn_, *valid_graph_,
                                       valid_triples_, valid_options_));
      er.has_valid_metrics = true;
    }
    report.epochs.push_back(er);

    if (metrics_on) {
      obs::MetricsSample sample;
      sample.kind = "epoch";
      sample.epoch = epoch;
      sample.iteration = iterations_per_epoch_;
      sample.sim_seconds = cumulative_seconds_;
      sample.wall_seconds = train_wall.ElapsedSeconds();
      sample.metrics = CollectObsMetrics(cumulative_seconds_);
      report.metrics_series.Add(std::move(sample));
    }
  }
  // Process runtime: pull every worker's final state into the engine
  // mirrors so SaveTrainState after Train() serializes current bytes.
  HETKG_RETURN_IF_ERROR(SyncAllWorkers());
  // ... and the final obs shipment, so the trace file written below
  // has every worker's events and the report every worker's metrics.
  if (step_driver_ != nullptr) {
    HETKG_RETURN_IF_ERROR(step_driver_->FlushObs());
  }
  report.overall_hit_ratio = OverallHitRatio();
  report.metrics = CollectObsMetrics(cumulative_seconds_);
  if (trace_lease.owns()) {
    const Status trace_status = trace_lease.Finish();
    if (!trace_status.ok()) {
      HETKG_LOG(Warning) << "trace write failed: "
                         << trace_status.ToString();
    }
  }
  if (metrics_on) {
    const Status status =
        report.metrics_series.WriteJson(config_.obs.metrics_json);
    if (!status.ok()) {
      HETKG_LOG(Warning) << "metrics export failed: " << status.ToString();
    }
  }
  return report;
}

// ---------------------------------------------------------------------------
// Crash recovery (DESIGN.md §9).

void PsTrainingEngine::BuildSnapshotSections(
    embedding::CheckpointWriter* writer) const {
  ByteWriter meta;
  meta.Str(name());
  meta.U64(config_.num_machines);
  meta.U64(config_.dim);
  meta.U64(server_->config().relation_dim);
  meta.U64(config_.batch_size);
  meta.U64(iterations_per_epoch_);
  meta.U64(config_.seed);
  writer->AddSection(embedding::SectionTag::kTrainerMeta, std::move(meta));

  server_->SaveState(writer);

  ByteWriter cluster_state;
  cluster_.SaveState(&cluster_state);
  transport_.SaveState(&cluster_state);
  writer->AddSection(embedding::SectionTag::kClusterState,
                     std::move(cluster_state));

  for (const Worker& w : workers_) {
    ByteWriter worker_state;
    SaveWorkerState(w, &worker_state);
    writer->AddSection(embedding::SectionTag::kWorker,
                       std::move(worker_state));
  }
}

void PsTrainingEngine::AppendEngineCountersSection(
    embedding::CheckpointWriter* writer) const {
  ByteWriter ec;
  ec.U64(global_iteration_);
  ec.U64(total_hits_);
  ec.U64(total_misses_);
  ec.F64(cumulative_seconds_);
  ec.F64(epoch_loss_sum_);
  ec.U64(epoch_pair_count_);
  ec.F64(phase_.prefetch);
  ec.F64(phase_.rebuild);
  ec.F64(phase_.pull);
  ec.F64(phase_.compute);
  ec.F64(phase_.push);
  engine_metrics_.SaveState(&ec);
  obs_metrics_.SaveState(&ec);
  writer->AddSection(embedding::SectionTag::kEngineCounters, std::move(ec));
}

void PsTrainingEngine::SaveWorkerState(const Worker& w,
                                       ByteWriter* out) const {
  out->U32(w.machine);
  out->U64(w.hits);
  out->U64(w.misses);
  w.sampler->SaveState(out);
  w.prefetcher->SaveState(out);

  // Hash maps are serialized in sorted key order so the payload never
  // depends on iteration order (the resume bit-identity contract).
  std::vector<std::pair<EmbKey, uint64_t>> refresh(w.last_refresh.begin(),
                                                   w.last_refresh.end());
  std::sort(refresh.begin(), refresh.end());
  out->U64(refresh.size());
  for (const auto& [key, iter] : refresh) {
    out->U64(key);
    out->U64(iter);
  }

  std::vector<EmbKey> grad_keys;
  grad_keys.reserve(w.pending_grads.size());
  for (const auto& [key, grad] : w.pending_grads) {
    grad_keys.push_back(key);
  }
  std::sort(grad_keys.begin(), grad_keys.end());
  out->U64(grad_keys.size());
  for (EmbKey key : grad_keys) {
    out->U64(key);
    out->FloatVec(w.pending_grads.at(key));
  }

  out->U64(w.batch_queue.size());
  for (const MiniBatch& batch : w.batch_queue) {
    out->U64(batch.positives.size());
    for (const Triple& t : batch.positives) {
      out->U32(t.head);
      out->U32(t.relation);
      out->U32(t.tail);
    }
    out->U64(batch.negatives.size());
    for (const embedding::NegativeSample& n : batch.negatives) {
      out->U32(n.positive_index);
      out->U32(n.triple.head);
      out->U32(n.triple.relation);
      out->U32(n.triple.tail);
      out->U8(static_cast<uint8_t>(n.corruption));
    }
  }

  out->U8(w.cache != nullptr ? 1 : 0);
  if (w.cache != nullptr) {
    w.cache->SaveState(out);
  }
}

bool PsTrainingEngine::LoadWorkerState(Worker* w, ByteReader* r) {
  const uint64_t hits = r->U64();
  const uint64_t misses = r->U64();
  if (!r->ok()) return false;
  if (!w->sampler->LoadState(r)) return false;
  if (!w->prefetcher->LoadState(r)) return false;

  auto valid_triple = [this](const Triple& t) {
    return t.head < graph_.num_entities() && t.tail < graph_.num_entities() &&
           t.relation < graph_.num_relations();
  };

  const uint64_t refresh_count = r->U64();
  if (!r->ok() || refresh_count > r->remaining() / 16) return false;
  std::unordered_map<EmbKey, size_t> last_refresh;
  last_refresh.reserve(refresh_count * 2);
  for (uint64_t i = 0; i < refresh_count; ++i) {
    const EmbKey key = r->U64();
    const uint64_t iter = r->U64();
    if (!r->ok() ||
        !last_refresh.emplace(key, static_cast<size_t>(iter)).second) {
      return false;
    }
  }

  const uint64_t grad_count = r->U64();
  if (!r->ok() || grad_count > r->remaining() / 12) return false;
  std::unordered_map<EmbKey, std::vector<float>> pending_grads;
  pending_grads.reserve(grad_count * 2);
  for (uint64_t i = 0; i < grad_count; ++i) {
    const EmbKey key = r->U64();
    std::vector<float> grad = r->FloatVec();
    if (!r->ok() || grad.size() != server_->RowDim(key) ||
        !pending_grads.emplace(key, std::move(grad)).second) {
      return false;
    }
  }

  const uint64_t queue_len = r->U64();
  if (!r->ok() || queue_len > r->remaining()) return false;
  std::deque<MiniBatch> batch_queue;
  for (uint64_t b = 0; b < queue_len; ++b) {
    MiniBatch batch;
    const uint64_t num_pos = r->U64();
    if (!r->ok() || num_pos > r->remaining() / 12) return false;
    batch.positives.resize(num_pos);
    for (Triple& t : batch.positives) {
      t.head = r->U32();
      t.relation = r->U32();
      t.tail = r->U32();
      if (!r->ok() || !valid_triple(t)) return false;
    }
    const uint64_t num_neg = r->U64();
    if (!r->ok() || num_neg > r->remaining() / 17) return false;
    batch.negatives.resize(num_neg);
    for (embedding::NegativeSample& n : batch.negatives) {
      n.positive_index = r->U32();
      n.triple.head = r->U32();
      n.triple.relation = r->U32();
      n.triple.tail = r->U32();
      const uint8_t corruption = r->U8();
      if (!r->ok() || corruption > 2 || !valid_triple(n.triple) ||
          n.positive_index >= batch.positives.size()) {
        return false;
      }
      n.corruption = static_cast<embedding::Corruption>(corruption);
    }
    batch_queue.push_back(std::move(batch));
  }

  const uint8_t has_cache = r->U8();
  if (!r->ok() || (has_cache != 0) != (w->cache != nullptr)) return false;
  if (w->cache != nullptr && !w->cache->LoadState(r)) return false;

  w->hits = hits;
  w->misses = misses;
  w->last_refresh = std::move(last_refresh);
  w->pending_grads = std::move(pending_grads);
  w->batch_queue = std::move(batch_queue);
  return true;
}

Status PsTrainingEngine::SaveTrainState(const std::string& path) const {
  embedding::CheckpointWriter writer;
  BuildSnapshotSections(&writer);
  AppendEngineCountersSection(&writer);
  return writer.WriteAtomic(path, config_.checkpoint_fsync);
}

Status PsTrainingEngine::WritePeriodicCheckpoint() {
  obs::TraceSpan span("ckpt.save", "ckpt");
  span.Arg("iteration", static_cast<double>(global_iteration_));
  // Process runtime: the worker sections must serialize the worker
  // processes' CURRENT state, not the stale parent-side mirrors.
  HETKG_RETURN_IF_ERROR(SyncAllWorkers());
  embedding::CheckpointWriter writer;
  BuildSnapshotSections(&writer);
  // The save counters go INSIDE the snapshot, so a resumed run's
  // counters match the uninterrupted run's. checkpoint.bytes counts the
  // state-section payload (the engine-counter section is excluded to
  // break the self-reference of a counter stored inside the file whose
  // size it measures).
  engine_metrics_.Increment(metric::kCheckpointSaves);
  engine_metrics_.Increment(metric::kCheckpointBytes,
                            writer.payload_bytes());
  AppendEngineCountersSection(&writer);
  HETKG_RETURN_IF_ERROR(
      writer.WriteAtomic(ckpt_manager_->SnapshotPath(global_iteration_),
                         config_.checkpoint_fsync));
  return ckpt_manager_->Commit(global_iteration_);
}

Status PsTrainingEngine::RestoreFromFile(const std::string& path) {
  HETKG_ASSIGN_OR_RETURN(const embedding::CheckpointReader reader,
                         embedding::CheckpointReader::Open(path));
  const std::string* meta =
      reader.Find(embedding::SectionTag::kTrainerMeta);
  if (meta == nullptr) {
    return Status::Corruption("snapshot missing trainer meta section");
  }
  ByteReader mr(*meta);
  const std::string snap_name = mr.Str();
  const uint64_t machines = mr.U64();
  const uint64_t dim = mr.U64();
  const uint64_t relation_dim = mr.U64();
  const uint64_t batch_size = mr.U64();
  const uint64_t ipe = mr.U64();
  const uint64_t seed = mr.U64();
  if (!mr.ok() || mr.remaining() != 0) {
    return Status::Corruption("bad trainer meta section");
  }
  if (snap_name != name() || machines != config_.num_machines ||
      dim != config_.dim ||
      relation_dim != server_->config().relation_dim ||
      batch_size != config_.batch_size || ipe != iterations_per_epoch_ ||
      seed != config_.seed) {
    return Status::FailedPrecondition(
        "snapshot was written by a different training configuration");
  }

  HETKG_RETURN_IF_ERROR(server_->LoadState(reader));

  const std::string* cs =
      reader.Find(embedding::SectionTag::kClusterState);
  if (cs == nullptr) {
    return Status::Corruption("snapshot missing cluster section");
  }
  ByteReader cr(*cs);
  if (!cluster_.LoadState(&cr) || !transport_.LoadState(&cr) ||
      cr.remaining() != 0) {
    return Status::Corruption("bad cluster section");
  }

  const std::string* ec =
      reader.Find(embedding::SectionTag::kEngineCounters);
  if (ec == nullptr) {
    return Status::Corruption("snapshot missing engine section");
  }
  ByteReader er(*ec);
  const uint64_t giter = er.U64();
  const uint64_t hits = er.U64();
  const uint64_t misses = er.U64();
  const double cumulative = er.F64();
  const double epoch_loss = er.F64();
  const uint64_t epoch_pairs = er.U64();
  PhaseSeconds phase;
  phase.prefetch = er.F64();
  phase.rebuild = er.F64();
  phase.pull = er.F64();
  phase.compute = er.F64();
  phase.push = er.F64();
  MetricRegistry engine_metrics;
  MetricRegistry obs_metrics;
  if (!er.ok() || !engine_metrics.LoadState(&er) ||
      !obs_metrics.LoadState(&er) || er.remaining() != 0) {
    return Status::Corruption("bad engine section");
  }

  const std::vector<const std::string*> sections =
      reader.FindAll(embedding::SectionTag::kWorker);
  if (sections.size() != workers_.size()) {
    return Status::Corruption("worker section count mismatch");
  }
  std::vector<char> seen(workers_.size(), 0);
  for (const std::string* payload : sections) {
    ByteReader wr(*payload);
    const uint32_t m = wr.U32();
    if (!wr.ok() || m >= workers_.size() || seen[m]) {
      return Status::Corruption("bad worker section id");
    }
    seen[m] = 1;
    if (!LoadWorkerState(&workers_[m], &wr) || wr.remaining() != 0) {
      return Status::Corruption("bad worker section");
    }
  }

  global_iteration_ = static_cast<size_t>(giter);
  total_hits_ = hits;
  total_misses_ = misses;
  cumulative_seconds_ = cumulative;
  epoch_loss_sum_ = epoch_loss;
  epoch_pair_count_ = epoch_pairs;
  phase_ = phase;
  engine_metrics_ = std::move(engine_metrics);
  obs_metrics_ = std::move(obs_metrics);
  resume_pending_ = true;
  return Status::OK();
}

Status PsTrainingEngine::RestoreTrainState(const std::string& path_or_dir) {
  HETKG_ASSIGN_OR_RETURN(
      const std::vector<std::string> candidates,
      CheckpointManager::ResumeCandidates(path_or_dir));
  Status last = Status::NotFound("no resume candidates");
  for (size_t i = 0; i < candidates.size(); ++i) {
    const Status status = RestoreFromFile(candidates[i]);
    if (status.ok()) {
      recovery_metrics_.Increment(metric::kCheckpointRestores);
      obs::Tracer::Instant("ckpt.restore", "ckpt", "iteration",
                           static_cast<double>(global_iteration_));
      return status;
    }
    HETKG_LOG(Warning) << "snapshot " << candidates[i]
                       << " rejected: " << status.ToString();
    if (i + 1 < candidates.size()) {
      recovery_metrics_.Increment(metric::kCheckpointFallbacks);
    }
    last = status;
  }
  return last;
}

Result<embedding::CheckpointReader> PsTrainingEngine::OpenLatestSnapshot() {
  if (ckpt_manager_ == nullptr) {
    return Status::NotFound("checkpointing is not configured");
  }
  HETKG_ASSIGN_OR_RETURN(
      const std::vector<std::string> candidates,
      CheckpointManager::ResumeCandidates(ckpt_manager_->dir()));
  Status last = Status::NotFound("no snapshots available");
  for (size_t i = 0; i < candidates.size(); ++i) {
    Result<embedding::CheckpointReader> reader =
        embedding::CheckpointReader::Open(candidates[i]);
    if (reader.ok()) return reader;
    HETKG_LOG(Warning) << "snapshot " << candidates[i]
                       << " rejected: " << reader.status().ToString();
    if (i + 1 < candidates.size()) {
      recovery_metrics_.Increment(metric::kCheckpointFallbacks);
    }
    last = reader.status();
  }
  return last;
}

Status PsTrainingEngine::MaybeInjectProcessFaults() {
  if (!transport_.HasPendingProcessFaults()) return Status::OK();
  for (const sim::ProcessFault& fault : transport_.TakeDueProcessFaults()) {
    if (fault.machine >= workers_.size()) {
      return Status::OutOfRange("process fault machine out of range");
    }
    switch (fault.kind) {
      case sim::ProcessFaultKind::kWorkerCrash:
        HETKG_RETURN_IF_ERROR(RecoverWorker(fault.machine));
        break;
      case sim::ProcessFaultKind::kPsShardRestart: {
        obs::Tracer::Instant("recovery.ps_shard_restart", "recovery",
                             "machine",
                             static_cast<double>(fault.machine));
        Result<embedding::CheckpointReader> snapshot = OpenLatestSnapshot();
        HETKG_RETURN_IF_ERROR(server_->RestartShard(
            fault.machine, snapshot.ok() ? &snapshot.value() : nullptr));
        break;
      }
    }
  }
  return Status::OK();
}

Status PsTrainingEngine::RecoverWorker(uint32_t machine) {
  obs::TraceSpan span("recovery.worker_crash", "recovery");
  span.Arg("machine", static_cast<double>(machine));
  Worker& w = workers_[machine];
  engine_metrics_.Increment(metric::kRecoveryWorkerCrashes);

  // Everything the worker process held in memory dies with it.
  if (w.cache != nullptr) w.cache->DropAll();
  w.batch_queue.clear();
  w.pending_grads.clear();
  w.last_refresh.clear();

  Result<embedding::CheckpointReader> snapshot = OpenLatestSnapshot();
  if (snapshot.ok()) {
    const embedding::CheckpointReader& reader = snapshot.value();
    const std::string* ec =
        reader.Find(embedding::SectionTag::kEngineCounters);
    if (ec == nullptr) {
      return Status::Corruption("snapshot missing engine section");
    }
    ByteReader er(*ec);
    const uint64_t snap_iter = er.U64();
    if (!er.ok() || snap_iter > global_iteration_) {
      return Status::Corruption("snapshot is ahead of the running trainer");
    }
    bool found = false;
    for (const std::string* payload :
         reader.FindAll(embedding::SectionTag::kWorker)) {
      ByteReader wr(*payload);
      if (wr.U32() != machine) continue;
      if (!LoadWorkerState(&w, &wr) || wr.remaining() != 0) {
        return Status::Corruption("bad worker section");
      }
      found = true;
      break;
    }
    if (!found) {
      return Status::Corruption("snapshot missing crashed worker section");
    }
    const std::string* rt = reader.Find(embedding::SectionTag::kPsRuntime);
    if (rt == nullptr) {
      return Status::Corruption("snapshot missing PS runtime section");
    }
    ByteReader rr(*rt);
    const std::vector<uint64_t> snap_push_seq = rr.U64Vec();
    if (!rr.ok() || machine >= snap_push_seq.size()) {
      return Status::Corruption("bad PS runtime section");
    }
    // Replay the iterations since the snapshot. The rewound sequence
    // numbers plus the server's replay mode make every replayed push a
    // no-op on the global tables; losses were already accumulated by
    // the pre-crash execution, so they are discarded here.
    server_->BeginWorkerReplay(machine, snap_push_seq[machine]);
    for (uint64_t iter = snap_iter; iter < global_iteration_; ++iter) {
      Step(&w, static_cast<size_t>(iter));
      if ((iter + 1) % iterations_per_epoch_ == 0) {
        // The original execution flushed write-back gradients at the
        // epoch boundary; replay must track that bookkeeping too.
        FlushPendingGradients(&w);
      }
    }
    server_->EndWorkerReplay(machine);
    engine_metrics_.Increment(metric::kRecoveryReplayedIterations,
                              global_iteration_ - snap_iter);
    return Status::OK();
  }

  // No snapshot: restart the worker from scratch. The sampling pipeline
  // is rebuilt from its original seeds (deterministic, though its
  // cursor restarts), consumed sequence numbers are never reused, and a
  // cache-carrying worker rebuilds its hot set immediately — CPS would
  // otherwise never reconstruct after iteration 0.
  HETKG_LOG(Warning) << "worker " << machine
                     << " crashed with no snapshot available ("
                     << snapshot.status().ToString()
                     << "); restarting from scratch";
  w.hits = 0;
  w.misses = 0;
  HETKG_ASSIGN_OR_RETURN(
      w.sampler,
      embedding::MakeNegativeSampler(SamplerSpecFor(w.sampler_seed)));
  w.prefetcher = std::make_unique<Prefetcher>(
      &w.triples, config_.batch_size, w.sampler.get(), w.prefetch_seed);
  server_->FastForwardPushSeq(machine, server_->applied_push_seq(machine));
  if (w.cache != nullptr) {
    ConstructHotSet(&w, sync_.config().strategy == CacheStrategy::kCps,
                    global_iteration_);
  }
  return Status::OK();
}

}  // namespace hetkg::core
