#ifndef HETKG_CORE_PARALLEL_BATCH_H_
#define HETKG_CORE_PARALLEL_BATCH_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/thread_pool.h"
#include "embedding/loss.h"
#include "embedding/score_function.h"

namespace hetkg::core {

/// A triple whose embedding rows have been resolved to dense indices
/// into a batch's scratch arrays. Resolution happens once per key per
/// batch (sorted-key binary search), replacing the per-access hash
/// lookups the score/backward hot loops used to pay.
struct ResolvedTriple {
  uint32_t head = 0;
  uint32_t relation = 0;
  uint32_t tail = 0;
};

/// One (positive, negative) scoring pair of a mini-batch.
struct ResolvedPair {
  uint32_t positive_index = 0;  // Into the batch's positives.
  ResolvedTriple negative;
};

/// Forward/backward totals of one batch.
struct BatchStats {
  double loss_sum = 0.0;
  uint64_t pairs = 0;
  uint64_t backward_calls = 0;
};

/// Number of fixed-order accumulation chunks the pair loop of a batch
/// with `num_pairs` scoring pairs is decomposed into. Depends ONLY on
/// the pair count — never on the thread count — which is what makes the
/// parallel path deterministic.
size_t BatchChunkCount(size_t num_pairs);

/// Deterministic intra-batch forward/backward executor.
///
/// The pair loop is decomposed into chunks (see BatchChunkCount). Each
/// chunk accumulates gradients into its own scratch buffer, recording
/// which rows it touched, and the per-chunk partials are merged into the
/// caller's gradient buffer in ascending chunk order. Every
/// floating-point addition therefore happens in the same order whether
/// the chunks run on 1 thread or N, so training is bit-identical at any
/// `--threads` setting. (Results differ in low bits from the
/// pre-chunking serial loop, which accumulated the whole batch as one
/// chain; the chunked order is the canonical one now, and `threads=1`
/// executes exactly the same decomposition serially.)
///
/// One instance per engine amortizes the chunk scratch across batches.
/// Not itself thread-safe: one Run() at a time per instance.
class ParallelBatchScorer {
 public:
  /// Computes the forward scores of `positives` (into `pos_scores`) and
  /// runs the pair loss/backward loop, accumulating gradients into
  /// `grads`.
  ///
  /// `rows[k]` is the embedding row of dense key index k. `grad_offsets`
  /// has K+1 prefix entries; key k's gradient lives at
  /// `grads[grad_offsets[k], grad_offsets[k+1])`. `grads` must be zeroed
  /// by the caller. `pool` may be null (or single-threaded): the same
  /// chunk decomposition then runs inline, producing bit-identical
  /// results.
  BatchStats Run(const embedding::ScoreFunction& score_fn,
                 const embedding::LossFunction& loss_fn,
                 std::span<const ResolvedTriple> positives,
                 std::span<const ResolvedPair> pairs,
                 std::span<const std::span<float>> rows,
                 std::span<const size_t> grad_offsets,
                 std::span<float> grads, std::vector<double>* pos_scores,
                 ThreadPool* pool);

 private:
  /// Per-chunk gradient scratch with touched-row tracking, so zeroing
  /// and merging cost is proportional to the rows the chunk actually
  /// used, not the whole gradient buffer.
  struct ChunkScratch {
    std::vector<float> grads;
    std::vector<uint32_t> touched;      // Key indices, first-touch order.
    std::vector<uint8_t> touched_flag;  // Per key index.
    BatchStats stats;
    // Per-positive batch-call scratch (entry 0 is the positive, entries
    // 1..G its negatives; upstream 0 is the group's summed dpos).
    std::vector<embedding::TripleView> views;
    std::vector<embedding::GradView> grad_views;
    std::vector<double> upstreams;
    std::vector<double> neg_scores;
    embedding::kernels::KernelScratch kernel_scratch;
  };

  void ProcessChunk(size_t chunk, size_t begin, size_t end,
                    const embedding::ScoreFunction& score_fn,
                    const embedding::LossFunction& loss_fn,
                    std::span<const ResolvedTriple> positives,
                    std::span<const ResolvedPair> pairs,
                    std::span<const std::span<float>> rows,
                    std::span<const size_t> grad_offsets,
                    std::span<const double> pos_scores);

  std::vector<ChunkScratch> chunks_;
};

}  // namespace hetkg::core

#endif  // HETKG_CORE_PARALLEL_BATCH_H_
