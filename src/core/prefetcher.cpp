#include "core/prefetcher.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <unordered_set>

#include "obs/trace.h"

namespace hetkg::core {

Prefetcher::Prefetcher(const std::vector<Triple>* local_triples,
                       size_t batch_size,
                       embedding::NegativeSampler* sampler, uint64_t seed)
    : local_triples_(local_triples),
      batch_size_(batch_size),
      sampler_(sampler),
      rng_(seed) {
  assert(local_triples != nullptr && !local_triples->empty());
  assert(batch_size >= 1);
  order_.resize(local_triples_->size());
  std::iota(order_.begin(), order_.end(), 0);
  rng_.Shuffle(&order_);
}

size_t Prefetcher::IterationsPerEpoch() const {
  return (local_triples_->size() + batch_size_ - 1) / batch_size_;
}

void Prefetcher::NextPositives(std::vector<Triple>* out) {
  out->clear();
  out->reserve(batch_size_);
  while (out->size() < batch_size_) {
    if (cursor_ >= order_.size()) {
      rng_.Shuffle(&order_);
      cursor_ = 0;
      // An epoch's final short batch is emitted as-is rather than
      // borrowing from the next epoch, so epoch boundaries stay aligned
      // with iteration counts.
      if (!out->empty()) break;
    }
    out->push_back((*local_triples_)[order_[cursor_++]]);
  }
}

PrefetchWindow Prefetcher::Prefetch(size_t window_iterations) {
  obs::TraceSpan span("prefetch.window", "prefetch");
  span.Arg("iterations", static_cast<double>(window_iterations));
  PrefetchWindow window;
  window.batches.reserve(window_iterations);
  for (size_t i = 0; i < window_iterations; ++i) {
    MiniBatch batch;
    NextPositives(&batch.positives);
    sampler_->Sample(batch.positives, &batch.negatives);
    window.total_accesses += CountBatchAccesses(batch, &window.frequencies);
    window.batches.push_back(std::move(batch));
  }
  span.Arg("accesses", static_cast<double>(window.total_accesses));
  return window;
}

uint64_t Prefetcher::PrefetchCountOnly(size_t window_iterations,
                                       FrequencyMap* freq) {
  obs::TraceSpan span("prefetch.count_only", "prefetch");
  span.Arg("iterations", static_cast<double>(window_iterations));
  uint64_t accesses = 0;
  MiniBatch batch;
  for (size_t i = 0; i < window_iterations; ++i) {
    NextPositives(&batch.positives);
    sampler_->Sample(batch.positives, &batch.negatives);
    accesses += CountBatchAccesses(batch, freq);
  }
  span.Arg("accesses", static_cast<double>(accesses));
  return accesses;
}

void Prefetcher::SaveState(ByteWriter* w) const {
  rng_.SaveState(w);
  w->U64(cursor_);
  w->U64(order_.size());
  w->Raw(order_.data(), order_.size() * sizeof(uint32_t));
}

bool Prefetcher::LoadState(ByteReader* r) {
  Rng rng = rng_;
  if (!rng.LoadState(r)) return false;
  const uint64_t cursor = r->U64();
  const uint64_t size = r->U64();
  if (!r->ok() || size != order_.size() || cursor > size) return false;
  std::vector<uint32_t> order(size);
  if (!r->ReadRaw(order.data(), size * sizeof(uint32_t))) return false;
  for (uint32_t idx : order) {
    if (idx >= local_triples_->size()) return false;
  }
  rng_ = rng;
  cursor_ = cursor;
  order_ = std::move(order);
  return true;
}

uint64_t CountBatchAccesses(const MiniBatch& batch, FrequencyMap* freq) {
  uint64_t accesses = 0;
  auto touch = [&](EmbKey key) {
    ++(*freq)[key];
    ++accesses;
  };
  for (const Triple& t : batch.positives) {
    touch(EntityKey(t.head));
    touch(RelationKey(t.relation));
    touch(EntityKey(t.tail));
  }
  for (const auto& neg : batch.negatives) {
    // Scoring the corrupted triple re-reads all three of its rows (one
    // of which is the fresh replacement).
    touch(EntityKey(neg.triple.head));
    touch(EntityKey(neg.triple.tail));
    touch(RelationKey(neg.triple.relation));
  }
  return accesses;
}

std::vector<EmbKey> BatchKeys(const MiniBatch& batch) {
  std::unordered_set<EmbKey> keys;
  keys.reserve(batch.positives.size() * 3 + batch.negatives.size());
  for (const Triple& t : batch.positives) {
    keys.insert(EntityKey(t.head));
    keys.insert(RelationKey(t.relation));
    keys.insert(EntityKey(t.tail));
  }
  for (const auto& neg : batch.negatives) {
    keys.insert(EntityKey(neg.triple.head));
    keys.insert(EntityKey(neg.triple.tail));
    keys.insert(RelationKey(neg.triple.relation));
  }
  return {keys.begin(), keys.end()};
}

std::vector<EmbKey> WindowKeys(const PrefetchWindow& window) {
  std::unordered_set<EmbKey> seen;
  std::vector<EmbKey> keys;
  auto touch = [&](EmbKey key) {
    if (seen.insert(key).second) keys.push_back(key);
  };
  for (const MiniBatch& batch : window.batches) {
    for (const Triple& t : batch.positives) {
      touch(EntityKey(t.head));
      touch(RelationKey(t.relation));
      touch(EntityKey(t.tail));
    }
    for (const auto& neg : batch.negatives) {
      touch(EntityKey(neg.triple.head));
      touch(EntityKey(neg.triple.tail));
      touch(RelationKey(neg.triple.relation));
    }
  }
  return keys;
}

}  // namespace hetkg::core
