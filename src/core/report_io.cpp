#include "core/report_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace hetkg::core {

std::string TrainReportCsv(const TrainReport& report) {
  std::ostringstream os;
  os << "epoch,mean_loss,compute_s,comm_s,total_s,cumulative_s,wall_s,"
        "hit_ratio,remote_bytes,valid_mrr\n";
  char buf[256];
  for (const EpochReport& e : report.epochs) {
    std::snprintf(buf, sizeof(buf),
                  "%zu,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%llu,",
                  e.epoch, e.mean_loss, e.epoch_time.compute_seconds,
                  e.epoch_time.comm_seconds,
                  e.epoch_time.total_seconds(), e.cumulative_seconds,
                  e.wall_seconds, e.cache_hit_ratio,
                  static_cast<unsigned long long>(e.remote_bytes));
    os << buf;
    if (e.has_valid_metrics) {
      std::snprintf(buf, sizeof(buf), "%.6f", e.valid_metrics.mrr);
      os << buf;
    }
    os << "\n";
  }
  return os.str();
}

Status WriteTrainReportCsv(const TrainReport& report,
                           const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  out << TrainReportCsv(report);
  if (!out) {
    return Status::IoError("short write to " + path);
  }
  return Status::OK();
}

}  // namespace hetkg::core
