#ifndef HETKG_CORE_HOT_EMBEDDING_TABLE_H_
#define HETKG_CORE_HOT_EMBEDDING_TABLE_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "embedding/adagrad.h"
#include "embedding/embedding_table.h"
#include "graph/types.h"

namespace hetkg::core {

/// The per-worker cache embedding table (the paper's central data
/// structure). Holds up to `capacity` embedding rows keyed by EmbKey,
/// mixing entity rows (width entity_dim) and relation rows (width
/// relation_dim) in two fixed-size slabs sized by the entity quota.
///
/// The table is *constructed*, not access-driven: Assign() installs the
/// hot set chosen by the filter (Algorithm 2); values are then filled by
/// pulling from the parameter server. Between refreshes the worker both
/// reads and locally updates these rows (partial staleness). A local
/// AdaGrad state per slot lets worker-side updates use the same
/// optimizer rule the server applies.
class HotEmbeddingTable {
 public:
  /// `entity_slots` + `relation_slots` = capacity. Slot counts are fixed
  /// up front (the heterogeneity quota of Sec. IV-B).
  HotEmbeddingTable(size_t entity_slots, size_t relation_slots,
                    size_t entity_dim, size_t relation_dim,
                    double learning_rate);

  size_t entity_slots() const { return entity_slots_; }
  size_t relation_slots() const { return relation_slots_; }
  size_t capacity() const { return entity_slots_ + relation_slots_; }
  size_t size() const { return index_.size(); }

  /// Resident bytes of the hot tier's row slabs (cache rows stay fp32
  /// in RAM regardless of the cold tier's dtype). Reported next to the
  /// cold tier's mapped bytes so the two-tier split is visible.
  size_t SizeBytes() const {
    return entity_rows_.SizeBytes() + relation_rows_.SizeBytes();
  }

  bool Contains(EmbKey key) const { return index_.contains(key); }

  /// Cached row for `key`; must be present.
  std::span<float> Row(EmbKey key);
  std::span<const float> Row(EmbKey key) const;

  /// Replaces the cached key set with `keys` (entity keys beyond the
  /// entity quota or relation keys beyond the relation quota are
  /// dropped — the filter already respects the quota, this is a safety
  /// net). Returns the keys that are newly admitted (their values must
  /// be pulled from the PS) — keys retained from the previous set keep
  /// their current local values.
  std::vector<EmbKey> Assign(std::span<const EmbKey> keys);

  /// All currently cached keys (unordered).
  std::vector<EmbKey> Keys() const;

  /// Applies a gradient to the cached copy with the worker-local
  /// AdaGrad state, optionally re-normalizing entity rows.
  void ApplyLocalGradient(EmbKey key, std::span<const float> grad,
                          bool normalize_entities);

  /// Overwrites the cached value (used by the P-periodic refresh that
  /// pulls fresh global values). Resets nothing else.
  void Refresh(EmbKey key, std::span<const float> value);

  /// Drops every cached entry (a crashed worker's cache is volatile
  /// state; recovery rebuilds it from the snapshot or from scratch).
  void DropAll();

  /// Serializes the full cache state — key->slot index (in sorted key
  /// order, so the payload is independent of hash iteration order),
  /// both row slabs, and both local AdaGrad accumulators — for the
  /// HETKGCK2 per-worker sections. LoadState validates the shape
  /// against this table's configuration and replaces the contents.
  void SaveState(ByteWriter* w) const;
  bool LoadState(ByteReader* r);

 private:
  struct SlotRef {
    bool is_relation = false;
    uint32_t slot = 0;
  };

  size_t entity_slots_;
  size_t relation_slots_;
  embedding::EmbeddingTable entity_rows_;
  embedding::EmbeddingTable relation_rows_;
  embedding::AdaGrad entity_opt_;
  embedding::AdaGrad relation_opt_;
  std::unordered_map<EmbKey, SlotRef> index_;
};

}  // namespace hetkg::core

#endif  // HETKG_CORE_HOT_EMBEDDING_TABLE_H_
