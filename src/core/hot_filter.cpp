#include "core/hot_filter.h"

#include <algorithm>
#include <cmath>

#include "obs/trace.h"

namespace hetkg::core {

FilterQuota ComputeQuota(const FilterOptions& options, size_t num_entities,
                         size_t num_relations) {
  FilterQuota quota;
  if (!options.heterogeneity_aware) {
    // No reserved split: both slabs sized to the full capacity upper
    // bound, the global ranking decides the mix.
    quota.entity_slots = std::min(options.capacity, num_entities);
    quota.relation_slots = std::min(options.capacity, num_relations);
    return quota;
  }
  size_t entity_slots = static_cast<size_t>(
      std::llround(static_cast<double>(options.capacity) *
                   options.entity_ratio));
  entity_slots = std::min(entity_slots, options.capacity);
  size_t relation_slots = options.capacity - entity_slots;

  // Surplus flows across kinds when a vocabulary is too small to fill
  // its quota.
  if (relation_slots > num_relations) {
    entity_slots += relation_slots - num_relations;
    relation_slots = num_relations;
  }
  if (entity_slots > num_entities) {
    const size_t surplus = entity_slots - num_entities;
    entity_slots = num_entities;
    relation_slots = std::min(num_relations, relation_slots + surplus);
  }
  quota.entity_slots = entity_slots;
  quota.relation_slots = relation_slots;
  return quota;
}

namespace {

struct KeyFreq {
  EmbKey key;
  uint32_t freq;
};

/// Descending frequency; ascending key on ties (determinism).
bool ByHotness(const KeyFreq& a, const KeyFreq& b) {
  if (a.freq != b.freq) return a.freq > b.freq;
  return a.key < b.key;
}

}  // namespace

std::vector<EmbKey> FilterHotKeys(const FrequencyMap& frequencies,
                                  const FilterOptions& options,
                                  const FilterQuota& quota) {
  obs::TraceSpan span("cache.filter", "cache");
  span.Arg("candidates", static_cast<double>(frequencies.size()));
  std::vector<KeyFreq> entities;
  std::vector<KeyFreq> relations;
  entities.reserve(frequencies.size());
  for (const auto& [key, freq] : frequencies) {
    (IsRelationKey(key) ? relations : entities).push_back({key, freq});
  }

  std::vector<EmbKey> hot;
  if (options.heterogeneity_aware) {
    auto take = [&hot](std::vector<KeyFreq>* ranked, size_t k) {
      const size_t n = std::min(k, ranked->size());
      std::partial_sort(ranked->begin(), ranked->begin() + n, ranked->end(),
                        ByHotness);
      for (size_t i = 0; i < n; ++i) {
        hot.push_back((*ranked)[i].key);
      }
    };
    take(&entities, quota.entity_slots);
    take(&relations, quota.relation_slots);
    return hot;
  }

  // HET-KG-N: one global ranking, bounded by capacity and the slab
  // sizes of the receiving cache.
  std::vector<KeyFreq> all;
  all.reserve(entities.size() + relations.size());
  all.insert(all.end(), entities.begin(), entities.end());
  all.insert(all.end(), relations.begin(), relations.end());
  std::sort(all.begin(), all.end(), ByHotness);
  size_t taken_entities = 0;
  size_t taken_relations = 0;
  for (const KeyFreq& kf : all) {
    if (hot.size() >= options.capacity) break;
    if (IsRelationKey(kf.key)) {
      if (taken_relations >= quota.relation_slots) continue;
      ++taken_relations;
    } else {
      if (taken_entities >= quota.entity_slots) continue;
      ++taken_entities;
    }
    hot.push_back(kf.key);
  }
  return hot;
}

double PredictedHitRatio(const FrequencyMap& frequencies,
                         const std::vector<EmbKey>& hot_keys,
                         uint64_t total_accesses) {
  if (total_accesses == 0) return 0.0;
  uint64_t hits = 0;
  for (EmbKey key : hot_keys) {
    auto it = frequencies.find(key);
    if (it != frequencies.end()) {
      hits += it->second;
    }
  }
  return static_cast<double>(hits) / static_cast<double>(total_accesses);
}

}  // namespace hetkg::core
