#ifndef HETKG_CORE_PIPELINE_H_
#define HETKG_CORE_PIPELINE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace hetkg::core {

/// Bounded blocking queue joining two pipeline stages (DESIGN.md §12).
///
/// Single producer / single consumer in the engine's stage graph, but
/// safe for multiple of either. Push blocks while the queue is full
/// (backpressure: a fast upstream stage cannot run unboundedly ahead),
/// Pop blocks while it is empty. Close() wakes everyone: subsequent
/// pushes are rejected, pops keep draining buffered items and return
/// nullopt only once the queue is both closed and empty — so shutdown
/// never drops in-flight work.
///
/// The stall counters feed the `pipeline.stall` metrics and the
/// high-water mark feeds `pipeline.queue_depth`; they are bookkeeping
/// only and never affect training state.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks until there is room (or the queue closes). Returns false —
  /// and drops `item` — only when the queue is closed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.size() >= capacity_ && !closed_) {
      ++push_stalls_;
      not_full_.wait(lock,
                     [this] { return items_.size() < capacity_ || closed_; });
    }
    if (closed_) return false;
    items_.push_back(std::move(item));
    if (items_.size() > high_water_) high_water_ = items_.size();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; false when full or closed.
  bool TryPush(T item) {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    if (items_.size() > high_water_) high_water_ = items_.size();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed AND
  /// drained; nullopt signals end-of-stream.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.empty() && !closed_) {
      ++pop_stalls_;
      not_empty_.wait(lock, [this] { return !items_.empty() || closed_; });
    }
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop; nullopt when currently empty (closed or not).
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// End-of-stream: rejects future pushes, lets pops drain the buffer.
  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  /// Reopens a drained queue for the next pipeline segment. The stall
  /// counters and high-water mark restart at zero: they profile exactly
  /// one segment, and the engine folds them into its cross-segment
  /// totals before reopening — a reopened queue would otherwise keep
  /// reporting the previous segment's stalls forever.
  void Reopen() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = false;
    push_stalls_ = 0;
    pop_stalls_ = 0;
    high_water_ = 0;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }
  size_t capacity() const { return capacity_; }
  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  /// Times a Push had to wait on a full queue (downstream too slow).
  uint64_t push_stalls() const {
    std::lock_guard<std::mutex> lock(mu_);
    return push_stalls_;
  }
  /// Times a Pop had to wait on an empty queue (upstream too slow).
  uint64_t pop_stalls() const {
    std::lock_guard<std::mutex> lock(mu_);
    return pop_stalls_;
  }
  /// Deepest the queue has ever been.
  size_t high_water() const {
    std::lock_guard<std::mutex> lock(mu_);
    return high_water_;
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
  uint64_t push_stalls_ = 0;
  uint64_t pop_stalls_ = 0;
  size_t high_water_ = 0;
};

/// One pipeline stage: a named loop body run on its own thread (async
/// mode) or ticked inline by the scheduling thread (deterministic
/// mode), in the spirit of SamGraph's LoopFunction stages.
///
/// The body returns true to be called again and false when its input
/// stream has ended; the thread exits on the first false.
class PipelineStage {
 public:
  PipelineStage(std::string name, std::function<bool()> body)
      : name_(std::move(name)), body_(std::move(body)) {}

  PipelineStage(const PipelineStage&) = delete;
  PipelineStage& operator=(const PipelineStage&) = delete;
  ~PipelineStage() { Join(); }

  const std::string& name() const { return name_; }

  /// Spawns the stage thread (async mode).
  void Start();

  /// Waits for the stage loop to end (its input closed and drained).
  void Join();

  bool joined() const { return joined_; }

  /// One inline call of the loop body (deterministic mode).
  bool Tick() { return body_(); }

 private:
  std::string name_;
  std::function<bool()> body_;
  std::thread thread_;
  bool joined_ = true;
};

/// The stage set of one engine pipeline, started and joined together.
class Pipeline {
 public:
  Pipeline() = default;
  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  PipelineStage* AddStage(std::string name, std::function<bool()> body);

  void Start();

  /// Joins in stage order; callers close the head queue first so the
  /// end-of-stream cascades down the graph.
  void Join();

  size_t num_stages() const { return stages_.size(); }
  PipelineStage* stage(size_t i) { return stages_[i].get(); }

 private:
  std::vector<std::unique_ptr<PipelineStage>> stages_;
};

/// Completion clock enforcing the pipeline staleness bound (DESIGN.md
/// §12): the pull stage of iteration i may only proceed once iteration
/// i - N has fully pushed, so no value a batch reads can lag the global
/// table by more than N iterations. N = 0 degenerates to a full
/// per-iteration rendezvous (pull i waits for push i-1).
class BoundedStalenessClock {
 public:
  /// `completed` iterations are already fully pushed (resume support).
  void Reset(size_t completed);

  /// Blocks until iteration `iter` is admissible under staleness bound
  /// `bound`: iter <= completed + bound, i.e. the values it pulls lag
  /// the global tables by at most `bound` iterations.
  void WaitAdmissible(size_t iter, size_t bound);

  /// Push stage: iterations complete in order; `iter` is now durable in
  /// the global tables.
  void MarkCompleted(size_t iter);

  /// Fully pushed iteration count.
  size_t completed() const;

  /// Times WaitAdmissible blocked (the staleness bound bit).
  uint64_t waits() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable advanced_;
  size_t completed_ = 0;
  uint64_t waits_ = 0;
};

}  // namespace hetkg::core

#endif  // HETKG_CORE_PIPELINE_H_
