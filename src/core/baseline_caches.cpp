#include "core/baseline_caches.h"

#include <algorithm>
#include <cassert>
#include <map>

namespace hetkg::core {

FifoCache::FifoCache(size_t capacity) : capacity_(capacity) {
  assert(capacity >= 1);
}

bool FifoCache::Access(EmbKey key) {
  const bool hit = resident_.contains(key);
  RecordAccess(hit);
  if (!hit) {
    if (resident_.size() >= capacity_) {
      resident_.erase(queue_.front());
      queue_.pop_front();
    }
    queue_.push_back(key);
    resident_.insert(key);
  }
  return hit;
}

LruCache::LruCache(size_t capacity) : capacity_(capacity) {
  assert(capacity >= 1);
}

bool LruCache::Access(EmbKey key) {
  auto it = index_.find(key);
  const bool hit = it != index_.end();
  RecordAccess(hit);
  if (hit) {
    order_.splice(order_.begin(), order_, it->second);
    return true;
  }
  if (index_.size() >= capacity_) {
    index_.erase(order_.back());
    order_.pop_back();
  }
  order_.push_front(key);
  index_[key] = order_.begin();
  return false;
}

LfuCache::LfuCache(size_t capacity) : capacity_(capacity) {
  assert(capacity >= 1);
}

bool LfuCache::Access(EmbKey key) {
  const uint64_t freq = ++frequency_[key];
  const bool hit = resident_.contains(key);
  RecordAccess(hit);
  if (hit) {
    // Move the resident to its new frequency bucket.
    auto it = buckets_.find(freq - 1);
    it->second.erase(key);
    if (it->second.empty()) buckets_.erase(it);
    buckets_[freq].insert(key);
    return true;
  }
  if (resident_.size() >= capacity_) {
    auto it = buckets_.begin();
    const EmbKey victim = *it->second.begin();
    it->second.erase(it->second.begin());
    if (it->second.empty()) buckets_.erase(it);
    resident_.erase(victim);
  }
  resident_.insert(key);
  buckets_[freq].insert(key);
  return false;
}

ImportanceCache::ImportanceCache(std::vector<EmbKey> keys)
    : resident_(keys.begin(), keys.end()) {}

bool ImportanceCache::Access(EmbKey key) {
  const bool hit = resident_.contains(key);
  RecordAccess(hit);
  return hit;
}

std::vector<EmbKey> TopDegreeKeys(const std::vector<uint32_t>& entity_degrees,
                                  const std::vector<uint32_t>& relation_freqs,
                                  size_t capacity) {
  struct Ranked {
    EmbKey key;
    uint32_t weight;
  };
  std::vector<Ranked> ranked;
  ranked.reserve(entity_degrees.size() + relation_freqs.size());
  for (size_t e = 0; e < entity_degrees.size(); ++e) {
    ranked.push_back({EntityKey(static_cast<EntityId>(e)), entity_degrees[e]});
  }
  for (size_t r = 0; r < relation_freqs.size(); ++r) {
    ranked.push_back(
        {RelationKey(static_cast<RelationId>(r)), relation_freqs[r]});
  }
  const size_t k = std::min(capacity, ranked.size());
  std::partial_sort(ranked.begin(), ranked.begin() + k, ranked.end(),
                    [](const Ranked& a, const Ranked& b) {
                      if (a.weight != b.weight) return a.weight > b.weight;
                      return a.key < b.key;
                    });
  std::vector<EmbKey> keys;
  keys.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    keys.push_back(ranked[i].key);
  }
  return keys;
}

}  // namespace hetkg::core
