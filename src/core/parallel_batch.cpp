#include "core/parallel_batch.h"

#include <algorithm>

#include "obs/trace.h"

namespace hetkg::core {

namespace {

/// Target pairs per accumulation chunk; small enough that the default
/// configuration (batch 32 x 8 negatives = 256 pairs) still fans out
/// across 8 cores.
constexpr size_t kPairsPerChunk = 32;
/// Upper bound on chunks per batch: caps per-chunk gradient scratch at
/// paper-scale batches (512 x 128 = 65k pairs) while leaving far more
/// chunks than any realistic core count.
constexpr size_t kMaxChunks = 64;

}  // namespace

size_t BatchChunkCount(size_t num_pairs) {
  if (num_pairs == 0) return 0;
  const size_t want = (num_pairs + kPairsPerChunk - 1) / kPairsPerChunk;
  return std::min(want, kMaxChunks);
}

void ParallelBatchScorer::ProcessChunk(
    size_t chunk, size_t begin, size_t end,
    const embedding::ScoreFunction& score_fn,
    const embedding::LossFunction& loss_fn,
    std::span<const ResolvedTriple> positives,
    std::span<const ResolvedPair> pairs,
    std::span<const std::span<float>> rows,
    std::span<const size_t> grad_offsets,
    std::span<const double> pos_scores) {
  ChunkScratch& cs = chunks_[chunk];
  const size_t grad_floats = grad_offsets.back();
  const size_t num_keys = grad_offsets.size() - 1;
  // Grow-only: rows outside the touched set stay zero across batches.
  if (cs.grads.size() < grad_floats) cs.grads.resize(grad_floats, 0.0f);
  if (cs.touched_flag.size() < num_keys) cs.touched_flag.resize(num_keys, 0);

  auto grad = [&](uint32_t k) -> std::span<float> {
    if (!cs.touched_flag[k]) {
      cs.touched_flag[k] = 1;
      cs.touched.push_back(k);
    }
    return std::span<float>(cs.grads.data() + grad_offsets[k],
                            grad_offsets[k + 1] - grad_offsets[k]);
  };

  // Negatives of one positive arrive contiguously, so each group
  // becomes ONE ScoreBatch + ONE ScoreBackwardBatch call instead of
  // 1 + N virtual calls; tail-corrupt negatives then reuse the hoisted
  // (h, r) query intermediate inside the kernel. The positive's
  // gradient applies once with the group's summed dpos (the fused form
  // is the canonical accumulation order; it is the same on every thread
  // count and kernel path). `backward_calls` keeps per-pair semantics —
  // it feeds the simulator's flops accounting.
  size_t i = begin;
  while (i < end) {
    const uint32_t pi = pairs[i].positive_index;
    size_t group_end = i + 1;
    while (group_end < end && pairs[group_end].positive_index == pi) {
      ++group_end;
    }
    const size_t num_neg = group_end - i;
    const ResolvedTriple& pt = positives[pi];

    cs.views.resize(num_neg + 1);
    cs.views[0] = {rows[pt.head], rows[pt.relation], rows[pt.tail]};
    for (size_t g = 0; g < num_neg; ++g) {
      const ResolvedTriple& nt = pairs[i + g].negative;
      cs.views[g + 1] = {rows[nt.head], rows[nt.relation], rows[nt.tail]};
    }
    cs.neg_scores.resize(num_neg);
    score_fn.ScoreBatch(cs.views[0],
                        std::span<const embedding::TripleView>(cs.views)
                            .subspan(1),
                        cs.neg_scores, &cs.kernel_scratch);

    cs.upstreams.assign(num_neg + 1, 0.0);
    double dpos_sum = 0.0;
    for (size_t g = 0; g < num_neg; ++g) {
      const embedding::LossGrad lg =
          loss_fn.PairLoss(pos_scores[pi], cs.neg_scores[g]);
      cs.stats.loss_sum += lg.loss;
      ++cs.stats.pairs;
      if (lg.dpos != 0.0) {
        dpos_sum += lg.dpos;
        ++cs.stats.backward_calls;
      }
      if (lg.dneg != 0.0) {
        cs.upstreams[g + 1] = lg.dneg;
        ++cs.stats.backward_calls;
      }
    }
    cs.upstreams[0] = dpos_sum;

    bool any_backward = false;
    cs.grad_views.assign(num_neg + 1, embedding::GradView{});
    if (cs.upstreams[0] != 0.0) {
      cs.grad_views[0] = {grad(pt.head), grad(pt.relation), grad(pt.tail)};
      any_backward = true;
    }
    for (size_t g = 0; g < num_neg; ++g) {
      if (cs.upstreams[g + 1] == 0.0) continue;
      const ResolvedTriple& nt = pairs[i + g].negative;
      cs.grad_views[g + 1] = {grad(nt.head), grad(nt.relation),
                              grad(nt.tail)};
      any_backward = true;
    }
    if (any_backward) {
      score_fn.ScoreBackwardBatch(cs.views[0], cs.views, cs.upstreams,
                                  cs.grad_views, &cs.kernel_scratch);
    }
    i = group_end;
  }
}

BatchStats ParallelBatchScorer::Run(
    const embedding::ScoreFunction& score_fn,
    const embedding::LossFunction& loss_fn,
    std::span<const ResolvedTriple> positives,
    std::span<const ResolvedPair> pairs,
    std::span<const std::span<float>> rows,
    std::span<const size_t> grad_offsets, std::span<float> grads,
    std::vector<double>* pos_scores, ThreadPool* pool) {
  const bool parallel = pool != nullptr && pool->num_threads() > 1;

  // Phase 1 — forward scores of the positives. Each iteration writes
  // only its own slot, so any partition is bit-identical.
  pos_scores->resize(positives.size());
  auto score_positives = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const ResolvedTriple& t = positives[i];
      (*pos_scores)[i] =
          score_fn.Score(rows[t.head], rows[t.relation], rows[t.tail]);
    }
  };
  if (parallel && positives.size() > 1) {
    pool->ParallelFor(positives.size(), score_positives);
  } else {
    score_positives(0, positives.size());
  }

  // Phase 2 — the pair loop, decomposed into thread-count-independent
  // chunks that accumulate into private scratch.
  const size_t chunk_count = BatchChunkCount(pairs.size());
  if (chunk_count == 0) return BatchStats{};
  const size_t per_chunk = (pairs.size() + chunk_count - 1) / chunk_count;
  if (chunks_.size() < chunk_count) chunks_.resize(chunk_count);
  auto process_chunks = [&](size_t cb, size_t ce) {
    // Runs on a pool worker thread: the span lands in that thread's own
    // ring buffer. Tracing only ever WRITES thread-local state inside
    // the parallel region, preserving the metrics.h determinism
    // contract (no MetricRegistry access in here).
    obs::TraceSpan span("compute.chunks", "compute");
    span.Arg("first_chunk", static_cast<double>(cb));
    span.Arg("chunks", static_cast<double>(ce - cb));
    for (size_t c = cb; c < ce; ++c) {
      const size_t begin = c * per_chunk;
      const size_t end = std::min(pairs.size(), begin + per_chunk);
      if (begin >= end) continue;
      ProcessChunk(c, begin, end, score_fn, loss_fn, positives, pairs, rows,
                   grad_offsets, *pos_scores);
    }
  };
  if (parallel && chunk_count > 1) {
    pool->ParallelFor(chunk_count, process_chunks);
  } else {
    process_chunks(0, chunk_count);
  }

  // Phase 3 — ordered reduction: partials merge in ascending chunk
  // order, making the sums independent of which thread ran which chunk.
  BatchStats total;
  for (size_t c = 0; c < chunk_count; ++c) {
    ChunkScratch& cs = chunks_[c];
    total.loss_sum += cs.stats.loss_sum;
    total.pairs += cs.stats.pairs;
    total.backward_calls += cs.stats.backward_calls;
    cs.stats = BatchStats{};
    for (uint32_t k : cs.touched) {
      const size_t row_begin = grad_offsets[k];
      const size_t row_end = grad_offsets[k + 1];
      for (size_t j = row_begin; j < row_end; ++j) {
        grads[j] += cs.grads[j];
      }
      // Leave the scratch zeroed for reuse.
      std::fill(cs.grads.begin() + row_begin, cs.grads.begin() + row_end,
                0.0f);
      cs.touched_flag[k] = 0;
    }
    cs.touched.clear();
  }
  return total;
}

}  // namespace hetkg::core
