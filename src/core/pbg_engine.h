#ifndef HETKG_CORE_PBG_ENGINE_H_
#define HETKG_CORE_PBG_ENGINE_H_

#include <memory>
#include <span>
#include <vector>

#include "common/thread_pool.h"
#include "core/parallel_batch.h"
#include "core/trainer.h"
#include "embedding/adagrad.h"
#include "embedding/embedding_table.h"
#include "embedding/loss.h"
#include "partition/bucketizer.h"

namespace hetkg::core {

/// EmbeddingLookup over in-process tables (used by PbgEngine).
class TableLookup : public eval::EmbeddingLookup {
 public:
  TableLookup(const embedding::EmbeddingTable* entities,
              const embedding::EmbeddingTable* relations)
      : entities_(entities), relations_(relations) {}
  std::span<const float> Entity(EntityId id) const override {
    return entities_->Row(id);
  }
  std::span<const float> Relation(RelationId id) const override {
    return relations_->Row(id);
  }
  size_t num_entities() const override { return entities_->num_rows(); }
  size_t num_relations() const override { return relations_->num_rows(); }

 private:
  const embedding::EmbeddingTable* entities_;
  const embedding::EmbeddingTable* relations_;
};

/// The PyTorch-BigGraph baseline (Sec. III-B): entities are split into
/// p uniform partitions; triples form p x p buckets; a lock server
/// schedules non-conflicting buckets onto machines; entity partitions
/// are swapped through a shared filesystem between buckets; negatives
/// are corrupted within the loaded partitions; and relation embeddings
/// are treated as DENSE model weights synchronized with a shared
/// parameter server every iteration — the behaviour the paper blames
/// for PBG's communication volume (Fig. 7).
class PbgEngine : public TrainingEngine {
 public:
  static Result<std::unique_ptr<PbgEngine>> Create(
      const TrainerConfig& config, const graph::KnowledgeGraph& graph,
      const std::vector<Triple>& train);

  std::string_view name() const override { return "PBG"; }
  void EnableValidation(const graph::KnowledgeGraph* graph,
                        std::span<const Triple> valid,
                        const eval::EvalOptions& options) override;
  Result<TrainReport> Train(size_t num_epochs) override;
  const eval::EmbeddingLookup& Embeddings() const override {
    return lookup_;
  }
  const embedding::ScoreFunction& ScoreFn() const override {
    return *score_fn_;
  }

  const partition::BucketPlan& plan() const { return plan_; }
  const sim::ClusterSim& cluster() const { return cluster_; }

  /// Fault-injection transport carrying the dense relation-weight
  /// round-trips to the shared PS. Partition swaps go through the
  /// shared filesystem, which the fault model treats as reliable.
  const sim::Transport& transport() const { return transport_; }

 private:
  PbgEngine(const TrainerConfig& config, const graph::KnowledgeGraph& graph);
  Status Setup(const std::vector<Triple>& train);

  /// Charges the shared-filesystem swap for `machine` taking bucket
  /// (i, j): saves partitions it holds but no longer needs, loads the
  /// missing ones.
  void SwapPartitions(uint32_t machine, uint32_t i, uint32_t j);

  /// Trains all triples of one bucket once on `machine`. Returns
  /// (summed pair loss, pair count).
  std::pair<double, uint64_t> TrainBucket(uint32_t machine,
                                          uint32_t bucket_id);

  /// Cumulative metric state for reports and time-series samples; see
  /// PsTrainingEngine::CollectObsMetrics for the contract.
  MetricRegistry CollectObsMetrics(double sim_seconds) const;

  TrainerConfig config_;
  const graph::KnowledgeGraph& graph_;
  sim::ClusterSim cluster_;
  sim::Transport transport_;

  std::unique_ptr<embedding::ScoreFunction> score_fn_;
  std::unique_ptr<embedding::LossFunction> loss_fn_;
  embedding::EmbeddingTable entities_{1, 1};
  embedding::EmbeddingTable relations_{1, 1};
  std::unique_ptr<embedding::AdaGrad> entity_opt_;
  std::unique_ptr<embedding::AdaGrad> relation_opt_;
  TableLookup lookup_{nullptr, nullptr};

  partition::BucketPlan plan_;
  std::vector<std::vector<EntityId>> partition_entities_;
  std::vector<std::vector<uint32_t>> machine_held_;  // Partitions held.
  Rng rng_{0};
  MetricRegistry metrics_;

  // Observability (src/obs/); gated exactly like PsTrainingEngine.
  // PBG's Fig. 7 phases: partition swap, compute, dense relation sync.
  bool obs_active_ = false;
  struct PhaseSeconds {
    double swap = 0.0;
    double compute = 0.0;
    double relation_sync = 0.0;
  };
  PhaseSeconds phase_;

  const graph::KnowledgeGraph* valid_graph_ = nullptr;
  std::span<const Triple> valid_triples_;
  eval::EvalOptions valid_options_;

  // Deterministic intra-batch parallelism (null pool when
  // config.num_threads <= 1); see ps_engine.h for the scheme. Negative
  // sampling stays serial so the rng_ stream is unchanged.
  std::unique_ptr<ThreadPool> pool_;
  ParallelBatchScorer scorer_;

  // Per-batch scratch, reused across batches. Rows and gradients are
  // addressed by the dense index of the batch's sorted key list.
  std::vector<EmbKey> scratch_keys_;
  std::vector<float> scratch_grads_;
  std::vector<std::span<float>> scratch_row_spans_;
  std::vector<size_t> scratch_grad_offsets_;  // K+1 prefix offsets.
  std::vector<ResolvedTriple> scratch_positives_;
  std::vector<ResolvedPair> scratch_pairs_;
  std::vector<double> scratch_pos_scores_;
};

}  // namespace hetkg::core

#endif  // HETKG_CORE_PBG_ENGINE_H_
