#ifndef HETKG_CORE_PBG_ENGINE_H_
#define HETKG_CORE_PBG_ENGINE_H_

#include <memory>
#include <span>
#include <vector>

#include "common/thread_pool.h"
#include "core/checkpoint_manager.h"
#include "core/parallel_batch.h"
#include "core/trainer.h"
#include "embedding/adagrad.h"
#include "embedding/embedding_table.h"
#include "embedding/loss.h"
#include "partition/bucketizer.h"

namespace hetkg::core {

/// EmbeddingLookup over in-process tables (used by PbgEngine).
class TableLookup : public eval::EmbeddingLookup {
 public:
  TableLookup(const embedding::EmbeddingTable* entities,
              const embedding::EmbeddingTable* relations)
      : entities_(entities), relations_(relations) {}
  std::span<const float> Entity(EntityId id) const override {
    return entities_->Row(id);
  }
  std::span<const float> Relation(RelationId id) const override {
    return relations_->Row(id);
  }
  size_t num_entities() const override { return entities_->num_rows(); }
  size_t num_relations() const override { return relations_->num_rows(); }

 private:
  const embedding::EmbeddingTable* entities_;
  const embedding::EmbeddingTable* relations_;
};

/// The PyTorch-BigGraph baseline (Sec. III-B): entities are split into
/// p uniform partitions; triples form p x p buckets; a lock server
/// schedules non-conflicting buckets onto machines; entity partitions
/// are swapped through a shared filesystem between buckets; negatives
/// are corrupted within the loaded partitions; and relation embeddings
/// are treated as DENSE model weights synchronized with a shared
/// parameter server every iteration — the behaviour the paper blames
/// for PBG's communication volume (Fig. 7).
class PbgEngine : public TrainingEngine {
 public:
  static Result<std::unique_ptr<PbgEngine>> Create(
      const TrainerConfig& config, const graph::KnowledgeGraph& graph,
      const std::vector<Triple>& train);

  std::string_view name() const override { return "PBG"; }
  void EnableValidation(const graph::KnowledgeGraph* graph,
                        std::span<const Triple> valid,
                        const eval::EvalOptions& options) override;
  Result<TrainReport> Train(size_t num_epochs) override;
  const eval::EmbeddingLookup& Embeddings() const override {
    return lookup_;
  }
  const embedding::ScoreFunction& ScoreFn() const override {
    return *score_fn_;
  }

  const partition::BucketPlan& plan() const { return plan_; }
  const sim::ClusterSim& cluster() const { return cluster_; }

  /// Fault-injection transport carrying the dense relation-weight
  /// round-trips to the shared PS. Partition swaps go through the
  /// shared filesystem, which the fault model treats as reliable.
  const sim::Transport& transport() const { return transport_; }

  /// Crash recovery (DESIGN.md §9), at EPOCH granularity: PBG's unit of
  /// durable progress is the completed epoch (partitions are saved back
  /// to the shared filesystem between buckets, but the lock-server
  /// schedule restarts per epoch). `checkpoint_every` counts epochs
  /// here, not iterations.
  Status SaveTrainState(const std::string& path) const override;
  Status RestoreTrainState(const std::string& path_or_dir) override;
  const MetricRegistry& RecoveryMetrics() const override {
    return recovery_metrics_;
  }

 private:
  PbgEngine(const TrainerConfig& config, const graph::KnowledgeGraph& graph);
  Status Setup(const std::vector<Triple>& train);

  /// Charges the shared-filesystem swap for `machine` taking bucket
  /// (i, j): saves partitions it holds but no longer needs, loads the
  /// missing ones.
  void SwapPartitions(uint32_t machine, uint32_t i, uint32_t j);

  /// Trains all triples of one bucket once on `machine`. Returns
  /// (summed pair loss, pair count).
  std::pair<double, uint64_t> TrainBucket(uint32_t machine,
                                          uint32_t bucket_id);

  /// Cumulative metric state for reports and time-series samples; see
  /// PsTrainingEngine::CollectObsMetrics for the contract.
  MetricRegistry CollectObsMetrics(double sim_seconds) const;

  // -- Crash recovery internals (DESIGN.md §9) --------------------------

  /// Appends meta + tables + kPbgState + kClusterState sections.
  void BuildSnapshot(embedding::CheckpointWriter* writer) const;

  /// Full-state restore from one snapshot file.
  Status RestoreFromFile(const std::string& path);

  /// Consumes due process-level fault events at a bucket boundary. A
  /// kWorkerCrash drops the machine's resident partitions (they reload
  /// from the shared filesystem on the next bucket — charged as a
  /// normal swap); a kPsShardRestart is an instant + metric only, since
  /// the shared relation PS mirrors weights every machine also holds.
  void MaybeInjectProcessFaults();

  TrainerConfig config_;
  const graph::KnowledgeGraph& graph_;
  sim::ClusterSim cluster_;
  sim::Transport transport_;

  std::unique_ptr<embedding::ScoreFunction> score_fn_;
  std::unique_ptr<embedding::LossFunction> loss_fn_;
  embedding::EmbeddingTable entities_{1, 1};
  embedding::EmbeddingTable relations_{1, 1};
  std::unique_ptr<embedding::AdaGrad> entity_opt_;
  std::unique_ptr<embedding::AdaGrad> relation_opt_;
  TableLookup lookup_{nullptr, nullptr};

  partition::BucketPlan plan_;
  std::vector<std::vector<EntityId>> partition_entities_;
  std::vector<std::vector<uint32_t>> machine_held_;  // Partitions held.
  Rng rng_{0};
  MetricRegistry metrics_;

  // Crash recovery (epoch granularity). `epochs_done_` is the resume
  // cursor; a restored engine's Train(n) continues at that epoch.
  size_t epochs_done_ = 0;
  double cumulative_seconds_ = 0.0;
  bool resume_pending_ = false;
  MetricRegistry recovery_metrics_;
  std::unique_ptr<CheckpointManager> ckpt_manager_;

  // Observability (src/obs/); gated exactly like PsTrainingEngine.
  // PBG's Fig. 7 phases: partition swap, compute, dense relation sync.
  bool obs_active_ = false;
  struct PhaseSeconds {
    double swap = 0.0;
    double compute = 0.0;
    double relation_sync = 0.0;
  };
  PhaseSeconds phase_;

  const graph::KnowledgeGraph* valid_graph_ = nullptr;
  std::span<const Triple> valid_triples_;
  eval::EvalOptions valid_options_;

  // Deterministic intra-batch parallelism (null pool when
  // config.num_threads <= 1); see ps_engine.h for the scheme. Negative
  // sampling stays serial so the rng_ stream is unchanged.
  std::unique_ptr<ThreadPool> pool_;
  ParallelBatchScorer scorer_;

  // Per-batch scratch, reused across batches. Rows and gradients are
  // addressed by the dense index of the batch's sorted key list.
  std::vector<EmbKey> scratch_keys_;
  std::vector<float> scratch_grads_;
  std::vector<std::span<float>> scratch_row_spans_;
  std::vector<size_t> scratch_grad_offsets_;  // K+1 prefix offsets.
  std::vector<ResolvedTriple> scratch_positives_;
  std::vector<ResolvedPair> scratch_pairs_;
  std::vector<double> scratch_pos_scores_;
};

}  // namespace hetkg::core

#endif  // HETKG_CORE_PBG_ENGINE_H_
