#ifndef HETKG_CORE_HOT_FILTER_H_
#define HETKG_CORE_HOT_FILTER_H_

#include <cstddef>
#include <vector>

#include "core/prefetcher.h"
#include "graph/types.h"

namespace hetkg::core {

/// Options for Algorithm 2 (the filtering step).
struct FilterOptions {
  /// Total hot-embedding slots (top-k of the paper).
  size_t capacity = 1024;
  /// Fraction of slots reserved for entity embeddings. The paper's
  /// heterogeneity study (Fig. 8c, Table VII) fixes 25% entities / 75%
  /// relations as the best split on Freebase-86m.
  double entity_ratio = 0.25;
  /// When false (the HET-KG-N ablation), the quota is ignored and the
  /// global top-k by frequency is taken regardless of kind.
  bool heterogeneity_aware = true;
};

/// Slot quotas derived from FilterOptions. When the relation vocabulary
/// is smaller than the relation quota, the surplus flows back to
/// entities (and vice versa) so the cache never wastes slots.
struct FilterQuota {
  size_t entity_slots = 0;
  size_t relation_slots = 0;
};
FilterQuota ComputeQuota(const FilterOptions& options, size_t num_entities,
                         size_t num_relations);

/// Algorithm 2: ranks the keys of `frequencies` by descending count
/// (ties broken by key for determinism) and returns the hot set.
/// With heterogeneity awareness the entity and relation rankings are
/// cut independently at their quotas; without it a single global top-k
/// is taken (still bounded by the slab sizes of the cache that will
/// receive the set).
std::vector<EmbKey> FilterHotKeys(const FrequencyMap& frequencies,
                                  const FilterOptions& options,
                                  const FilterQuota& quota);

/// Share of `total_accesses` (from the same window the frequencies were
/// counted over) that the chosen `hot_keys` would serve — the cache hit
/// ratio the construction predicts.
double PredictedHitRatio(const FrequencyMap& frequencies,
                         const std::vector<EmbKey>& hot_keys,
                         uint64_t total_accesses);

}  // namespace hetkg::core

#endif  // HETKG_CORE_HOT_FILTER_H_
