#ifndef HETKG_CORE_BASELINE_CACHES_H_
#define HETKG_CORE_BASELINE_CACHES_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "graph/types.h"

namespace hetkg::core {

/// Access-driven cache policy interface, used for the Table VI
/// comparison against FIFO / LRU / LFU / degree-"importance" caching.
/// `Access` reports whether the key was resident and (for the evicting
/// policies) admits it on a miss.
class CachePolicy {
 public:
  virtual ~CachePolicy() = default;
  virtual std::string_view name() const = 0;
  virtual bool Access(EmbKey key) = 0;
  virtual size_t size() const = 0;

  /// Running hit statistics.
  uint64_t hits() const { return hits_; }
  uint64_t accesses() const { return accesses_; }
  double HitRatio() const {
    return accesses_ == 0
               ? 0.0
               : static_cast<double>(hits_) / static_cast<double>(accesses_);
  }

 protected:
  void RecordAccess(bool hit) {
    ++accesses_;
    if (hit) ++hits_;
  }

 private:
  uint64_t hits_ = 0;
  uint64_t accesses_ = 0;
};

/// First-in first-out eviction.
class FifoCache : public CachePolicy {
 public:
  explicit FifoCache(size_t capacity);
  std::string_view name() const override { return "FIFO"; }
  bool Access(EmbKey key) override;
  size_t size() const override { return resident_.size(); }

 private:
  size_t capacity_;
  std::list<EmbKey> queue_;  // Front = oldest.
  std::unordered_set<EmbKey> resident_;
};

/// Least-recently-used eviction.
class LruCache : public CachePolicy {
 public:
  explicit LruCache(size_t capacity);
  std::string_view name() const override { return "LRU"; }
  bool Access(EmbKey key) override;
  size_t size() const override { return index_.size(); }

 private:
  size_t capacity_;
  std::list<EmbKey> order_;  // Front = most recent.
  std::unordered_map<EmbKey, std::list<EmbKey>::iterator> index_;
};

/// Least-frequently-used eviction (frequency counted over all accesses
/// so far, resident or not — the classic LFU-with-history variant HET
/// uses). Residents are indexed by frequency bucket so eviction is
/// O(log #distinct frequencies).
class LfuCache : public CachePolicy {
 public:
  explicit LfuCache(size_t capacity);
  std::string_view name() const override { return "LFU"; }
  bool Access(EmbKey key) override;
  size_t size() const override { return resident_.size(); }

 private:
  size_t capacity_;
  std::unordered_map<EmbKey, uint64_t> frequency_;
  std::unordered_set<EmbKey> resident_;
  std::map<uint64_t, std::unordered_set<EmbKey>> buckets_;
};

/// The paper's "Importance cache" baseline: a fixed set chosen before
/// training by a static importance score (entity degree / relation
/// frequency in the training graph) with no runtime adaptation.
class ImportanceCache : public CachePolicy {
 public:
  /// `keys` is the pre-ranked static hot set (already cut to capacity).
  explicit ImportanceCache(std::vector<EmbKey> keys);
  std::string_view name() const override { return "Importance"; }
  bool Access(EmbKey key) override;
  size_t size() const override { return resident_.size(); }

 private:
  std::unordered_set<EmbKey> resident_;
};

/// Builds the static degree-ranked key set for ImportanceCache from
/// graph statistics: top keys by (degree or relation frequency),
/// mixing kinds in one global ranking.
std::vector<EmbKey> TopDegreeKeys(const std::vector<uint32_t>& entity_degrees,
                                  const std::vector<uint32_t>& relation_freqs,
                                  size_t capacity);

}  // namespace hetkg::core

#endif  // HETKG_CORE_BASELINE_CACHES_H_
