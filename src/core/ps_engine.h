#ifndef HETKG_CORE_PS_ENGINE_H_
#define HETKG_CORE_PS_ENGINE_H_

#include <atomic>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.h"
#include "core/checkpoint_manager.h"
#include "core/hot_embedding_table.h"
#include "core/hot_filter.h"
#include "core/parallel_batch.h"
#include "core/pipeline.h"
#include "core/prefetcher.h"
#include "core/ps_backend.h"
#include "core/sync_controller.h"
#include "core/trainer.h"
#include "embedding/loss.h"
#include "embedding/negative_sampler.h"
#include "ps/parameter_server.h"

namespace hetkg::net {
class ProcCoordinator;
class ProcWorker;
}  // namespace hetkg::net

namespace hetkg::core {

/// EmbeddingLookup over a parameter server's global tables (evaluation
/// reads are not charged to the network model).
class PsEmbeddingLookup : public eval::EmbeddingLookup {
 public:
  explicit PsEmbeddingLookup(const ps::ParameterServer* server)
      : server_(server) {}
  std::span<const float> Entity(EntityId id) const override {
    return server_->Value(EntityKey(id));
  }
  std::span<const float> Relation(RelationId id) const override {
    return server_->Value(RelationKey(id));
  }
  size_t num_entities() const override {
    return server_->config().num_entities;
  }
  size_t num_relations() const override {
    return server_->config().num_relations;
  }

 private:
  const ps::ParameterServer* server_;
};

/// Parameter-server training engine implementing Algorithms 1-4. The
/// three PS-based systems of the paper are configurations of this one
/// engine:
///   * HET-KG-C : sync.strategy = kCps (whole-epoch hot set, fixed)
///   * HET-KG-D : sync.strategy = kDps (hot set rebuilt every D iters)
///   * DGL-KE   : sync.strategy = kNone (no worker cache)
/// One worker runs per machine; each training iteration executes every
/// worker once against the shared (simulated) cluster, and all
/// embedding traffic flows through the ParameterServer's accounted
/// pull/push paths.
class PsTrainingEngine : public TrainingEngine {
 public:
  static Result<std::unique_ptr<PsTrainingEngine>> Create(
      const TrainerConfig& config, const graph::KnowledgeGraph& graph,
      const std::vector<Triple>& train);

  std::string_view name() const override;
  void EnableValidation(const graph::KnowledgeGraph* graph,
                        std::span<const Triple> valid,
                        const eval::EvalOptions& options) override;
  Result<TrainReport> Train(size_t num_epochs) override;
  const eval::EmbeddingLookup& Embeddings() const override {
    return lookup_;
  }
  const embedding::ScoreFunction& ScoreFn() const override {
    return *score_fn_;
  }

  /// Iterations that constitute one epoch (max over workers).
  size_t IterationsPerEpoch() const { return iterations_per_epoch_; }

  /// Cache hit ratio accumulated since construction.
  double OverallHitRatio() const;

  /// The simulated cluster (exposed for benches that inspect traffic).
  const sim::ClusterSim& cluster() const { return cluster_; }

  /// The fault-injection transport carrying all PS traffic (exposed for
  /// benches/tests that inspect retry and degradation counters).
  const sim::Transport& transport() const { return transport_; }

  /// Async pipeline introspection (0 in deterministic mode). The max
  /// observed lag is the largest (pull iteration - completed iteration)
  /// any pull stage ran at — the staleness-bound property tests assert
  /// it never exceeds --max_pipeline_staleness.
  size_t MaxObservedPipelineLag() const { return max_observed_lag_; }
  uint64_t PipelineStalenessWaits() const { return staleness_waits_total_; }

  /// Crash recovery (DESIGN.md §9): full-training-state snapshots.
  Status SaveTrainState(const std::string& path) const override;
  Status RestoreTrainState(const std::string& path_or_dir) override;
  const MetricRegistry& RecoveryMetrics() const override {
    return recovery_metrics_;
  }

  // -- Process runtime hooks (src/net/, DESIGN.md §13) -------------------

  /// Coordinator-side driver of real worker processes. When installed,
  /// Train() forwards each worker step / epoch flush / state sync to
  /// this interface instead of executing the stages locally; the
  /// driver services the worker's PsBackend RPCs against this engine's
  /// authoritative server/cluster in sim order.
  class StepDriver {
   public:
    virtual ~StepDriver() = default;
    /// Runs one worker step remotely; returns {loss_sum, pair_count}.
    virtual Result<std::pair<double, uint64_t>> DriveStep(uint32_t machine,
                                                          size_t iter) = 0;
    /// Epoch boundary: remote write-back flush, then harvest the
    /// worker's hit/miss counters into the engine's worker mirror.
    virtual Status DriveEpochEnd(uint32_t machine) = 0;
    /// Pulls the worker's full serialized state into the engine's
    /// worker mirror (checkpoint barriers and end of training).
    virtual Status SyncWorkerState(uint32_t machine) = 0;
    /// True when a worker process died since the last restart.
    virtual bool WorkerFailed() const = 0;
    /// Kills and relaunches every worker process from the engine's
    /// current (just-restored) state; clears the failure flag.
    virtual Status RestartWorkers() = 0;

    // -- Cross-process observability (DESIGN.md §14). Default no-ops so
    // -- drivers without obs support need no changes. ------------------
    /// Called once at the start of TrainInner when config.obs is
    /// enabled: arms per-process tracers/metrics in the workers and
    /// runs the clock-offset handshake.
    virtual Status SetupObs() { return Status::OK(); }
    /// Final shipment drain before the engine writes its trace/metrics
    /// files (end of training and halt paths).
    virtual Status FlushObs() { return Status::OK(); }
    /// Merged never-serialized runtime metrics (transport histograms,
    /// per-worker gauges) for CollectObsMetrics, or null when the
    /// driver has none.
    virtual const MetricRegistry* ObsMetrics() const { return nullptr; }
  };

  /// Installs the process-runtime driver (nullptr restores sim mode).
  void SetStepDriver(StepDriver* driver) { step_driver_ = driver; }

  /// Reroutes the pipeline stages' shared-state calls — a forked worker
  /// process installs its RPC backend here (nullptr restores the local
  /// in-process backend).
  void SetPsBackend(PsBackend* backend) {
    backend_ = backend != nullptr ? backend : local_backend_.get();
  }

 private:
  friend class ::hetkg::net::ProcCoordinator;
  friend class ::hetkg::net::ProcWorker;
  struct Worker {
    uint32_t machine = 0;
    std::vector<Triple> triples;
    std::unique_ptr<embedding::NegativeSampler> sampler;
    std::unique_ptr<Prefetcher> prefetcher;
    std::unique_ptr<HotEmbeddingTable> cache;
    std::deque<MiniBatch> batch_queue;
    uint64_t hits = 0;
    uint64_t misses = 0;
    /// Construction seeds, kept so an in-sim worker crash with no
    /// snapshot can rebuild its sampling pipeline deterministically.
    uint64_t sampler_seed = 0;
    uint64_t prefetch_seed = 0;
    /// kOnAccess refresh bookkeeping: iteration of each cached row's
    /// last pull from the PS.
    std::unordered_map<EmbKey, size_t> last_refresh;
    /// Write-back mode: locally accumulated, not-yet-pushed gradients
    /// of cached rows.
    std::unordered_map<EmbKey, std::vector<float>> pending_grads;
  };

  /// One iteration of one worker flowing through the pipeline
  /// (DESIGN.md §12). The task owns every buffer its stages touch, so
  /// in async mode tasks of different iterations can be in flight on
  /// different stage threads without sharing scratch. Cached rows are
  /// COPIED into `values` by the pull stage (a bit-exact float copy),
  /// so the compute stage never reads cache storage that a concurrent
  /// push stage may be updating.
  struct StepTask {
    Worker* w = nullptr;
    size_t iter = 0;
    MiniBatch batch;

    // Plan produced by the sample stage, applied by the pull stage.
    bool flush_writeback = false;
    bool rebuild = false;
    bool whole_epoch = false;
    FrequencyMap rebuild_freq;
    uint64_t rebuild_accesses = 0;
    uint64_t refill_accesses = 0;

    // Row/gradient buffers addressed by the dense index of the sorted
    // key list (`keys`), not by hash lookups.
    std::vector<EmbKey> keys;
    std::vector<EmbKey> missing;
    std::vector<float> values;
    std::vector<float> grads;
    std::vector<std::span<float>> pull_spans;
    std::vector<std::span<float>> row_spans;  // Per key index.
    std::vector<size_t> grad_offsets;         // K+1 prefix offsets.
    std::vector<ResolvedTriple> positives;
    std::vector<ResolvedPair> pairs;
    std::vector<double> pos_scores;

    // Results, filled by the compute stage.
    double loss_sum = 0.0;
    uint64_t pair_count = 0;

    void Reset(Worker* worker, size_t iteration) {
      w = worker;
      iter = iteration;
      flush_writeback = false;
      rebuild = false;
      whole_epoch = false;
      rebuild_freq.clear();
      rebuild_accesses = 0;
      refill_accesses = 0;
      loss_sum = 0.0;
      pair_count = 0;
    }
  };

  PsTrainingEngine(const TrainerConfig& config, SyncController sync,
                   const graph::KnowledgeGraph& graph);

  Status Setup(const std::vector<Triple>& train);

  /// Prefetcher-side half of a hot-set (re)build: counts (CPS: whole
  /// epoch) or counts-and-queues (DPS: next D batches) accesses into
  /// `freq`, returning the counted access total. Touches only the
  /// worker's sampling pipeline — safe on the sample stage.
  uint64_t CollectHotSetPlan(Worker* w, bool whole_epoch,
                             FrequencyMap* freq);

  /// PS-side half: filters `freq`, assigns the hot set, re-anchors
  /// staleness clocks at `iter`, and pulls newly admitted rows. Runs on
  /// the pull stage (or the scheduling thread during recovery).
  void ApplyHotSet(Worker* w, size_t iter, const FrequencyMap& freq,
                   uint64_t accesses);

  /// Both halves back-to-back — the recovery path's rebuild, which runs
  /// serially outside the pipeline.
  void ConstructHotSet(Worker* w, bool whole_epoch, size_t iter);

  /// Ensures the worker has a mini-batch ready. Returns the prefetch
  /// access count to charge (0 when no refill happened); the caller
  /// records it on the pull stage so sim accounting stays ordered with
  /// the iteration's other cluster traffic.
  uint64_t FillBatchQueue(Worker* w);

  /// Pushes all locally accumulated (write-back) gradients to the PS.
  void FlushPendingGradients(Worker* w);

  /// Degradation path of a pull whose retries were exhausted: cached
  /// keys keep serving their stale copy (and stay refresh-eligible);
  /// uncached keys fall back to an unaccounted degraded read so the
  /// iteration can proceed. `keys[failed[i]]` are the unserved keys,
  /// `spans[failed[i]]` their destinations.
  void HandleFailedPulls(Worker* w, size_t iter,
                         std::span<const EmbKey> keys,
                         std::span<const std::span<float>> spans,
                         std::span<const uint32_t> failed);

  // -- Pipeline stages (DESIGN.md §12) ----------------------------------
  // Each stage owns a disjoint slice of engine state: sample touches
  // only the worker's sampling pipeline (prefetcher, negative sampler,
  // batch queue); pull and push touch the shared PS/cluster/transport
  // state (under ps_mu_ in async mode); compute touches only the
  // task-private buffers. In deterministic mode the scheduling thread
  // ticks all four inline, in pre-pipeline order, so results are
  // bit-identical to the former monolithic Step().

  /// Sample/prefetch stage: plans any hot-set rebuild, refills the
  /// batch queue, and pops the iteration's mini-batch into the task.
  void RunSampleStage(StepTask* task);

  /// Cache-refresh/pull stage: applies the rebuild plan, resolves the
  /// batch's rows (cache hits vs PS pulls, staleness-driven refreshes),
  /// and leaves every row's bits in the task's private buffer.
  void RunPullStage(StepTask* task);

  /// Batch compute stage: forward + backward over all pairs via the
  /// deterministic chunked executor.
  void RunComputeStage(StepTask* task);

  /// Gradient push stage: local cache updates, write-back accumulation,
  /// and the iteration's PS push.
  void RunPushStage(StepTask* task);

  // Async stage-thread loop bodies (return false to stop; a closed
  // upstream queue cascades shutdown to the next stage).
  bool SampleLoop();
  bool PullLoop();
  bool ComputeLoop();
  bool PushLoop();

  /// Runs up to `max_iters` full iterations (all workers each) through
  /// the threaded pipeline, stopping early at an iteration boundary
  /// when a process fault comes due. Returns iterations completed and
  /// advances global_iteration_; on return the pipeline is drained, so
  /// engine state is at a consistent barrier.
  size_t RunAsyncSegment(size_t max_iters);

  StepTask* AcquireTask();
  void ReleaseTask(StepTask* task);

  /// Critical path of the current epoch's traffic: the plain serial
  /// path in deterministic mode, the overlap-adjusted path in async
  /// mode (stages ahead by up to the pipeline staleness hide the
  /// smaller of compute/comm behind the larger).
  sim::TimeBreakdown EpochCriticalPath() const {
    return async_mode_
               ? cluster_.OverlappedCriticalPath(sync_.PipelineStaleness())
               : cluster_.CriticalPath();
  }

  /// One training iteration for one worker at global iteration `iter`:
  /// routes one task through the staged pipeline inline (deterministic
  /// mode and the recovery replay path).
  /// Returns the summed pair loss and pair count.
  std::pair<double, uint64_t> Step(Worker* w, size_t iter);

  /// The body of Train(); the public Train() adds the process-runtime
  /// crash-retry wrapper around it when a StepDriver is installed.
  Result<TrainReport> TrainInner(size_t num_epochs);

  /// Process runtime: refreshes every worker mirror from its process
  /// (no-op in sim mode). Runs before checkpoints, halts, and the end
  /// of training so serialized worker sections are always current.
  Status SyncAllWorkers();

  /// fork() hygiene for the process runtime: joins and destroys the
  /// compute pool so the process is single-threaded across fork(), then
  /// rebuilds it (in parent and child independently) afterwards.
  void TeardownPool();
  void RebuildPool();
  /// Whether EnableValidation borrowed pool_ (so RebuildPool re-patches
  /// the dangling pointer after a fork-cycle rebuild).
  bool pool_valid_options_aliased_ = false;

  /// Cumulative metric state for reports and time-series samples:
  /// server + transport counters, cache hit/miss totals, and — when
  /// observability is active — the phase gauges and latency histograms.
  /// `sim_seconds` is the cumulative critical-path time at the sample.
  MetricRegistry CollectObsMetrics(double sim_seconds) const;

  // -- Crash recovery internals (DESIGN.md §9) --------------------------

  /// The sampler spec Setup() would build for `seed` (shared by setup
  /// and the no-snapshot worker recovery path).
  embedding::NegativeSamplerSpec SamplerSpecFor(uint64_t seed) const;

  /// Appends meta + PS + cluster/transport + per-worker sections.
  void BuildSnapshotSections(embedding::CheckpointWriter* writer) const;

  /// Appends the engine-counter section (always last: its payload size
  /// is excluded from the checkpoint.bytes accounting, breaking the
  /// self-reference of a counter stored inside the file it measures).
  void AppendEngineCountersSection(embedding::CheckpointWriter* writer) const;

  void SaveWorkerState(const Worker& w, ByteWriter* out) const;
  /// `r` is positioned after the leading worker id.
  bool LoadWorkerState(Worker* w, ByteReader* r);

  /// Full-state restore from one snapshot file.
  Status RestoreFromFile(const std::string& path);

  /// Periodic save: counters, snapshot write, manifest commit.
  Status WritePeriodicCheckpoint();

  /// Newest snapshot readable from checkpoint_dir (manifest fallback on
  /// corruption); NotFound when checkpointing is off or nothing saved.
  Result<embedding::CheckpointReader> OpenLatestSnapshot();

  /// Consumes due process-level fault events at an iteration boundary.
  Status MaybeInjectProcessFaults();

  /// kWorkerCrash handler: drops the worker's volatile state, then
  /// restores from the latest snapshot + idempotent replay, or rebuilds
  /// from seeds when no snapshot exists.
  Status RecoverWorker(uint32_t machine);

  TrainerConfig config_;
  SyncController sync_;
  const graph::KnowledgeGraph& graph_;

  sim::ClusterSim cluster_;
  sim::Transport transport_;
  std::unique_ptr<ps::ParameterServer> server_;
  /// PS/cluster seam (DESIGN.md §13): stage code mutates shared state
  /// through backend_ only. Sim runtime: the local backend below.
  /// Process runtime: a forked worker swaps in its RPC backend.
  std::unique_ptr<LocalPsBackend> local_backend_;
  PsBackend* backend_ = nullptr;
  /// Process runtime driver (coordinator side); null in sim mode.
  StepDriver* step_driver_ = nullptr;
  std::unique_ptr<embedding::ScoreFunction> score_fn_;
  std::unique_ptr<embedding::LossFunction> loss_fn_;
  PsEmbeddingLookup lookup_{nullptr};

  std::vector<Worker> workers_;
  size_t iterations_per_epoch_ = 0;
  size_t global_iteration_ = 0;
  uint64_t total_hits_ = 0;
  uint64_t total_misses_ = 0;

  // Crash recovery. The run-cursor members below were Train() locals
  // before snapshots existed; they are engine state now so a mid-epoch
  // resume continues the epoch's accumulation bit-identically.
  double cumulative_seconds_ = 0.0;
  double epoch_loss_sum_ = 0.0;
  uint64_t epoch_pair_count_ = 0;
  /// Set only by RestoreTrainState; the next Train() starts mid-run.
  bool resume_pending_ = false;
  /// checkpoint.*/recovery.* counters that live INSIDE the training
  /// snapshot (both the crashed and the reference run take the same
  /// schedule, so merging them into reports keeps bit-identity).
  MetricRegistry engine_metrics_;
  /// Process-local restore/fallback/orphan counters — never serialized,
  /// never merged into reports (see TrainingEngine::RecoveryMetrics).
  MetricRegistry recovery_metrics_;
  /// Cold-tier -> cache promotions (tier.promotions). A plain engine
  /// counter — like the table-side cold_reads counters it must never
  /// enter serialized state, or tiered and in-RAM snapshots of the same
  /// run would diverge.
  uint64_t tier_promotions_ = 0;
  std::unique_ptr<CheckpointManager> ckpt_manager_;
  /// Degree table for rebuilding degree-weighted samplers on recovery
  /// (empty unless config_.degree_weighted_negatives).
  std::vector<uint32_t> train_degrees_;

  // Observability (src/obs/). `obs_active_` is latched from
  // config_.obs at setup; every instrumentation branch below is gated
  // on it, so disabled runs take the exact pre-obs code path. Phase
  // times are *simulated* seconds (MachineTime deltas around each Step
  // phase), cumulative over the run — deterministic at any thread
  // count, matching the Fig. 7 taxonomy.
  bool obs_active_ = false;
  struct PhaseSeconds {
    double prefetch = 0.0;
    double rebuild = 0.0;
    double pull = 0.0;
    double compute = 0.0;
    double push = 0.0;
  };
  PhaseSeconds phase_;
  /// Gauge/histogram side-registry (scheduling thread only), merged
  /// into reports by CollectObsMetrics.
  MetricRegistry obs_metrics_;

  // Validation hookup.
  const graph::KnowledgeGraph* valid_graph_ = nullptr;
  std::span<const Triple> valid_triples_;
  eval::EvalOptions valid_options_;

  // Deterministic intra-batch parallelism: worker forward/backward math
  // fans out over this pool (null when config.num_threads <= 1); the
  // scorer's ordered reduction keeps results bit-identical at any
  // thread count.
  std::unique_ptr<ThreadPool> pool_;
  ParallelBatchScorer scorer_;

  // Hot-set construction scratch (pull stage / recovery only).
  std::vector<std::span<float>> rebuild_pull_spans_;

  // -- Pipeline engine (DESIGN.md §12) ----------------------------------
  // Both modes route every iteration through these bounded queues; the
  // deterministic mode ticks the stages inline on the scheduling thread
  // (each push is immediately popped — a once-per-iteration
  // rendezvous), while --async runs one thread per stage and lets them
  // advance independently under backpressure.
  bool async_mode_ = false;
  std::unique_ptr<BoundedQueue<StepTask*>> q_sample_pull_;
  std::unique_ptr<BoundedQueue<StepTask*>> q_pull_compute_;
  std::unique_ptr<BoundedQueue<StepTask*>> q_compute_push_;
  /// HET-style bounded-staleness admission: the pull stage of iteration
  /// i waits until i <= completed + N (async mode only).
  BoundedStalenessClock clock_;
  /// Async mode: coarse lock serializing the shared PS-side state
  /// (server_, cluster_, transport_, caches, write-back maps) between
  /// the pull and push stages. Compute holds it only for its sim-flop
  /// accounting, so batch math overlaps communication.
  std::mutex ps_mu_;
  /// Task recycling (any stage thread).
  std::mutex task_mu_;
  std::vector<std::unique_ptr<StepTask>> task_pool_;
  std::vector<StepTask*> free_tasks_;
  // Per-segment sample-stage cursor (sample thread only while running).
  size_t segment_end_ = 0;
  size_t sample_next_iter_ = 0;
  uint32_t sample_next_worker_ = 0;
  /// Set by the push stage when a process fault comes due; the sample
  /// stage stops feeding at the next iteration boundary so the drained
  /// pipeline leaves a consistent barrier for recovery.
  std::atomic<bool> stop_feeding_{false};
  // Async observability, read by the driver after Join().
  size_t max_observed_lag_ = 0;        // Pull thread only.
  uint64_t staleness_waits_total_ = 0;  // Accumulated across segments.
  // Queue stall/depth profile accumulated across segments: Reopen()
  // zeroes the per-queue counters, so the driver folds each drained
  // segment's numbers in here before reopening.
  uint64_t queue_stalls_total_ = 0;
  size_t queue_high_water_sample_ = 0;
  size_t queue_high_water_compute_ = 0;
  size_t queue_high_water_push_ = 0;
};

}  // namespace hetkg::core

#endif  // HETKG_CORE_PS_ENGINE_H_
