#include "core/hot_embedding_table.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

#include "common/logging.h"
#include "obs/trace.h"

namespace hetkg::core {

HotEmbeddingTable::HotEmbeddingTable(size_t entity_slots,
                                     size_t relation_slots, size_t entity_dim,
                                     size_t relation_dim,
                                     double learning_rate)
    : entity_slots_(entity_slots),
      relation_slots_(relation_slots),
      entity_rows_(std::max<size_t>(1, entity_slots), entity_dim),
      relation_rows_(std::max<size_t>(1, relation_slots), relation_dim),
      entity_opt_(std::max<size_t>(1, entity_slots), entity_dim,
                  learning_rate),
      relation_opt_(std::max<size_t>(1, relation_slots), relation_dim,
                    learning_rate) {
  index_.reserve(capacity() * 2);
}

std::span<float> HotEmbeddingTable::Row(EmbKey key) {
  auto it = index_.find(key);
  HETKG_CHECK(it != index_.end()) << "key not cached: " << key;
  return it->second.is_relation ? relation_rows_.Row(it->second.slot)
                                : entity_rows_.Row(it->second.slot);
}

std::span<const float> HotEmbeddingTable::Row(EmbKey key) const {
  auto it = index_.find(key);
  HETKG_CHECK(it != index_.end()) << "key not cached: " << key;
  return it->second.is_relation ? relation_rows_.Row(it->second.slot)
                                : entity_rows_.Row(it->second.slot);
}

std::vector<EmbKey> HotEmbeddingTable::Assign(std::span<const EmbKey> keys) {
  obs::TraceSpan span("cache.assign", "cache");
  span.Arg("keys", static_cast<double>(keys.size()));
  // Split the incoming set by kind, respecting the slot quotas.
  std::vector<EmbKey> want_entities;
  std::vector<EmbKey> want_relations;
  for (EmbKey key : keys) {
    if (IsRelationKey(key)) {
      if (want_relations.size() < relation_slots_) {
        want_relations.push_back(key);
      }
    } else if (want_entities.size() < entity_slots_) {
      want_entities.push_back(key);
    }
  }

  std::unordered_set<EmbKey> want_set;
  want_set.reserve((want_entities.size() + want_relations.size()) * 2);
  want_set.insert(want_entities.begin(), want_entities.end());
  want_set.insert(want_relations.begin(), want_relations.end());

  // Evict keys not in the new set, collecting their slots for reuse.
  std::vector<uint32_t> free_entity_slots;
  std::vector<uint32_t> free_relation_slots;
  for (auto it = index_.begin(); it != index_.end();) {
    const bool keep = want_set.contains(it->first);
    if (keep) {
      ++it;
      continue;
    }
    if (it->second.is_relation) {
      free_relation_slots.push_back(it->second.slot);
    } else {
      free_entity_slots.push_back(it->second.slot);
    }
    it = index_.erase(it);
  }
  // Any never-used slots are also free.
  {
    std::vector<bool> used_e(entity_slots_, false);
    std::vector<bool> used_r(relation_slots_, false);
    for (const auto& [key, ref] : index_) {
      (ref.is_relation ? used_r : used_e)[ref.slot] = true;
    }
    free_entity_slots.clear();
    free_relation_slots.clear();
    for (uint32_t s = 0; s < entity_slots_; ++s) {
      if (!used_e[s]) free_entity_slots.push_back(s);
    }
    for (uint32_t s = 0; s < relation_slots_; ++s) {
      if (!used_r[s]) free_relation_slots.push_back(s);
    }
  }

  // Admit the new keys.
  std::vector<EmbKey> admitted;
  auto admit = [&](std::span<const EmbKey> want, bool is_relation,
                   std::vector<uint32_t>* free_slots,
                   embedding::AdaGrad* opt) {
    for (EmbKey key : want) {
      if (index_.contains(key)) continue;  // Retained from previous set.
      HETKG_CHECK(!free_slots->empty()) << "cache slot accounting error";
      const uint32_t slot = free_slots->back();
      free_slots->pop_back();
      opt->ResetRow(slot);
      index_[key] = SlotRef{is_relation, slot};
      admitted.push_back(key);
    }
  };
  admit(want_entities, false, &free_entity_slots, &entity_opt_);
  admit(want_relations, true, &free_relation_slots, &relation_opt_);
  return admitted;
}

std::vector<EmbKey> HotEmbeddingTable::Keys() const {
  std::vector<EmbKey> keys;
  keys.reserve(index_.size());
  for (const auto& [key, ref] : index_) {
    keys.push_back(key);
  }
  return keys;
}

void HotEmbeddingTable::ApplyLocalGradient(EmbKey key,
                                           std::span<const float> grad,
                                           bool normalize_entities) {
  auto it = index_.find(key);
  HETKG_CHECK(it != index_.end()) << "key not cached: " << key;
  if (it->second.is_relation) {
    relation_opt_.Apply(it->second.slot, relation_rows_.Row(it->second.slot),
                        grad);
    return;
  }
  entity_opt_.Apply(it->second.slot, entity_rows_.Row(it->second.slot), grad);
  if (normalize_entities) {
    entity_rows_.L2NormalizeRow(it->second.slot);
  }
}

void HotEmbeddingTable::Refresh(EmbKey key, std::span<const float> value) {
  auto row = Row(key);
  HETKG_CHECK(row.size() == value.size());
  std::copy(value.begin(), value.end(), row.begin());
}

void HotEmbeddingTable::DropAll() { index_.clear(); }

void HotEmbeddingTable::SaveState(ByteWriter* w) const {
  w->U64(entity_slots_);
  w->U64(relation_slots_);
  w->U64(entity_rows_.dim());
  w->U64(relation_rows_.dim());
  // Index in sorted key order: the payload must not depend on
  // unordered_map iteration order or resume bit-identity breaks.
  std::vector<std::pair<EmbKey, SlotRef>> entries(index_.begin(),
                                                  index_.end());
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  w->U64(entries.size());
  for (const auto& [key, ref] : entries) {
    w->U64(key);
    w->U8(ref.is_relation ? 1 : 0);
    w->U32(ref.slot);
  }
  auto save_slab = [&](const embedding::EmbeddingTable& rows,
                       const embedding::AdaGrad& opt) {
    for (size_t i = 0; i < rows.num_rows(); ++i) {
      const auto row = rows.Row(i);
      w->Raw(row.data(), row.size() * sizeof(float));
    }
    opt.SaveState(w);
  };
  save_slab(entity_rows_, entity_opt_);
  save_slab(relation_rows_, relation_opt_);
}

bool HotEmbeddingTable::LoadState(ByteReader* r) {
  if (r->U64() != entity_slots_ || r->U64() != relation_slots_ ||
      r->U64() != entity_rows_.dim() || r->U64() != relation_rows_.dim()) {
    return false;
  }
  const uint64_t count = r->U64();
  if (!r->ok() || count > capacity()) return false;
  std::unordered_map<EmbKey, SlotRef> index;
  index.reserve(count * 2);
  for (uint64_t i = 0; i < count; ++i) {
    const EmbKey key = r->U64();
    const bool is_relation = r->U8() != 0;
    const uint32_t slot = r->U32();
    if (!r->ok() ||
        slot >= (is_relation ? relation_slots_ : entity_slots_) ||
        !index.emplace(key, SlotRef{is_relation, slot}).second) {
      return false;
    }
  }
  auto load_slab = [&](embedding::EmbeddingTable* rows,
                       embedding::AdaGrad* opt) {
    std::vector<float> row(rows->dim());
    for (size_t i = 0; i < rows->num_rows(); ++i) {
      if (!r->ReadRaw(row.data(), row.size() * sizeof(float))) return false;
      rows->SetRow(i, row);
    }
    return opt->LoadState(r);
  };
  if (!load_slab(&entity_rows_, &entity_opt_) ||
      !load_slab(&relation_rows_, &relation_opt_)) {
    return false;
  }
  index_ = std::move(index);
  return true;
}

}  // namespace hetkg::core
