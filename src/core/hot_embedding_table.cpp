#include "core/hot_embedding_table.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

#include "common/logging.h"
#include "obs/trace.h"

namespace hetkg::core {

HotEmbeddingTable::HotEmbeddingTable(size_t entity_slots,
                                     size_t relation_slots, size_t entity_dim,
                                     size_t relation_dim,
                                     double learning_rate)
    : entity_slots_(entity_slots),
      relation_slots_(relation_slots),
      entity_rows_(std::max<size_t>(1, entity_slots), entity_dim),
      relation_rows_(std::max<size_t>(1, relation_slots), relation_dim),
      entity_opt_(std::max<size_t>(1, entity_slots), entity_dim,
                  learning_rate),
      relation_opt_(std::max<size_t>(1, relation_slots), relation_dim,
                    learning_rate) {
  index_.reserve(capacity() * 2);
}

std::span<float> HotEmbeddingTable::Row(EmbKey key) {
  auto it = index_.find(key);
  HETKG_CHECK(it != index_.end()) << "key not cached: " << key;
  return it->second.is_relation ? relation_rows_.Row(it->second.slot)
                                : entity_rows_.Row(it->second.slot);
}

std::span<const float> HotEmbeddingTable::Row(EmbKey key) const {
  auto it = index_.find(key);
  HETKG_CHECK(it != index_.end()) << "key not cached: " << key;
  return it->second.is_relation ? relation_rows_.Row(it->second.slot)
                                : entity_rows_.Row(it->second.slot);
}

std::vector<EmbKey> HotEmbeddingTable::Assign(std::span<const EmbKey> keys) {
  obs::TraceSpan span("cache.assign", "cache");
  span.Arg("keys", static_cast<double>(keys.size()));
  // Split the incoming set by kind, respecting the slot quotas.
  std::vector<EmbKey> want_entities;
  std::vector<EmbKey> want_relations;
  for (EmbKey key : keys) {
    if (IsRelationKey(key)) {
      if (want_relations.size() < relation_slots_) {
        want_relations.push_back(key);
      }
    } else if (want_entities.size() < entity_slots_) {
      want_entities.push_back(key);
    }
  }

  std::unordered_set<EmbKey> want_set;
  want_set.reserve((want_entities.size() + want_relations.size()) * 2);
  want_set.insert(want_entities.begin(), want_entities.end());
  want_set.insert(want_relations.begin(), want_relations.end());

  // Evict keys not in the new set, collecting their slots for reuse.
  std::vector<uint32_t> free_entity_slots;
  std::vector<uint32_t> free_relation_slots;
  for (auto it = index_.begin(); it != index_.end();) {
    const bool keep = want_set.contains(it->first);
    if (keep) {
      ++it;
      continue;
    }
    if (it->second.is_relation) {
      free_relation_slots.push_back(it->second.slot);
    } else {
      free_entity_slots.push_back(it->second.slot);
    }
    it = index_.erase(it);
  }
  // Any never-used slots are also free.
  {
    std::vector<bool> used_e(entity_slots_, false);
    std::vector<bool> used_r(relation_slots_, false);
    for (const auto& [key, ref] : index_) {
      (ref.is_relation ? used_r : used_e)[ref.slot] = true;
    }
    free_entity_slots.clear();
    free_relation_slots.clear();
    for (uint32_t s = 0; s < entity_slots_; ++s) {
      if (!used_e[s]) free_entity_slots.push_back(s);
    }
    for (uint32_t s = 0; s < relation_slots_; ++s) {
      if (!used_r[s]) free_relation_slots.push_back(s);
    }
  }

  // Admit the new keys.
  std::vector<EmbKey> admitted;
  auto admit = [&](std::span<const EmbKey> want, bool is_relation,
                   std::vector<uint32_t>* free_slots,
                   embedding::AdaGrad* opt) {
    for (EmbKey key : want) {
      if (index_.contains(key)) continue;  // Retained from previous set.
      HETKG_CHECK(!free_slots->empty()) << "cache slot accounting error";
      const uint32_t slot = free_slots->back();
      free_slots->pop_back();
      opt->ResetRow(slot);
      index_[key] = SlotRef{is_relation, slot};
      admitted.push_back(key);
    }
  };
  admit(want_entities, false, &free_entity_slots, &entity_opt_);
  admit(want_relations, true, &free_relation_slots, &relation_opt_);
  return admitted;
}

std::vector<EmbKey> HotEmbeddingTable::Keys() const {
  std::vector<EmbKey> keys;
  keys.reserve(index_.size());
  for (const auto& [key, ref] : index_) {
    keys.push_back(key);
  }
  return keys;
}

void HotEmbeddingTable::ApplyLocalGradient(EmbKey key,
                                           std::span<const float> grad,
                                           bool normalize_entities) {
  auto it = index_.find(key);
  HETKG_CHECK(it != index_.end()) << "key not cached: " << key;
  if (it->second.is_relation) {
    relation_opt_.Apply(it->second.slot, relation_rows_.Row(it->second.slot),
                        grad);
    return;
  }
  entity_opt_.Apply(it->second.slot, entity_rows_.Row(it->second.slot), grad);
  if (normalize_entities) {
    entity_rows_.L2NormalizeRow(it->second.slot);
  }
}

void HotEmbeddingTable::Refresh(EmbKey key, std::span<const float> value) {
  auto row = Row(key);
  HETKG_CHECK(row.size() == value.size());
  std::copy(value.begin(), value.end(), row.begin());
}

}  // namespace hetkg::core
