#include "core/checkpoint_manager.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/fs_sync.h"

namespace hetkg::core {

namespace fs = std::filesystem;

namespace {

constexpr char kManifestName[] = "MANIFEST";

std::string JoinPath(const std::string& dir, const std::string& file) {
  return (fs::path(dir) / file).string();
}

// Recognizes a cold-tier sidecar name "<base>.cold<digits>" (the layout
// CheckpointWriter::AddColdSidecar produces) and extracts the base
// container name. Anything else — including the sidecar temp files,
// whose extension is ".tmp" — is not a sidecar.
bool ParseColdSidecarName(const std::string& name, std::string* base) {
  const size_t pos = name.rfind(".cold");
  if (pos == std::string::npos) return false;
  const std::string digits = name.substr(pos + 5);
  if (digits.empty()) return false;
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
  }
  *base = name.substr(0, pos);
  return true;
}

}  // namespace

CheckpointManager::CheckpointManager(std::string dir, size_t keep,
                                     bool fsync)
    : dir_(std::move(dir)), keep_(keep), fsync_(fsync) {}

Result<size_t> CheckpointManager::Prepare() {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    return Status::IoError("cannot create checkpoint dir " + dir_ + ": " +
                           ec.message());
  }
  // Sweep "*.tmp" orphans: a writer that crashed between its temp write
  // and the rename left one behind, and it would otherwise live
  // forever. Nothing references a temp file (the manifest only names
  // renamed snapshots), so removal is always safe. Directory iteration
  // order is filesystem-defined, which is fine here — removal is
  // per-file independent.
  size_t removed = 0;
  std::vector<std::string> names;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file()) continue;
    if (entry.path().extension() == ".tmp") {
      std::error_code remove_ec;
      fs::remove(entry.path(), remove_ec);
      if (!remove_ec) ++removed;
      continue;
    }
    names.push_back(entry.path().filename().string());
  }
  if (ec) {
    return Status::IoError("cannot scan checkpoint dir " + dir_ + ": " +
                           ec.message());
  }
  // Sweep cold sidecars whose base container is gone: sidecars are
  // committed BEFORE their container, so a crash in that gap (or a
  // pruning crash after the container was removed) leaves "<base>.cold*"
  // files nothing will ever open. A sidecar whose container exists is
  // live and must stay.
  for (const std::string& name : names) {
    std::string base;
    if (!ParseColdSidecarName(name, &base)) continue;
    if (std::find(names.begin(), names.end(), base) != names.end()) continue;
    std::error_code remove_ec;
    fs::remove(JoinPath(dir_, name), remove_ec);
    if (!remove_ec) ++removed;
  }
  return removed;
}

std::string CheckpointManager::SnapshotPath(uint64_t iteration) const {
  char name[32];
  std::snprintf(name, sizeof(name), "ck-%012" PRIu64 ".hetkg", iteration);
  return JoinPath(dir_, name);
}

Result<std::vector<ManifestEntry>> CheckpointManager::ReadManifest() const {
  std::vector<ManifestEntry> entries;
  std::ifstream in(JoinPath(dir_, kManifestName));
  if (!in) return entries;  // No manifest yet.
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    ManifestEntry entry;
    if (!(fields >> entry.iteration >> entry.file)) {
      return Status::Corruption("malformed manifest line in " + dir_ + ": " +
                                line);
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

Status CheckpointManager::WriteManifest(
    const std::vector<ManifestEntry>& entries) const {
  const std::string path = JoinPath(dir_, kManifestName);
  const std::string tmp_path = path + ".manifest-tmp";
  {
    std::ofstream out(tmp_path, std::ios::trunc);
    if (!out) {
      return Status::IoError("cannot open " + tmp_path + " for writing");
    }
    for (const ManifestEntry& entry : entries) {
      out << entry.iteration << ' ' << entry.file << '\n';
    }
    if (!out) {
      return Status::IoError("short write to " + tmp_path);
    }
  }
  // The manifest is the commit record of the whole checkpoint: fsync
  // the temp file before the rename and the directory entry after, or
  // a power loss could replay an old (or torn) manifest over snapshots
  // it no longer describes.
  if (fsync_) {
    HETKG_RETURN_IF_ERROR(SyncFile(tmp_path));
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    return Status::IoError("cannot rename " + tmp_path + " to " + path);
  }
  if (fsync_) {
    HETKG_RETURN_IF_ERROR(SyncDir(dir_));
  }
  return Status::OK();
}

Status CheckpointManager::Commit(uint64_t iteration) {
  HETKG_ASSIGN_OR_RETURN(std::vector<ManifestEntry> entries, ReadManifest());
  const std::string file =
      fs::path(SnapshotPath(iteration)).filename().string();
  // Re-saving the same iteration (a resumed run re-reaching a save
  // point) replaces the entry instead of duplicating it.
  std::erase_if(entries,
                [&](const ManifestEntry& e) { return e.file == file; });
  entries.push_back(ManifestEntry{iteration, file});
  std::sort(entries.begin(), entries.end(),
            [](const ManifestEntry& a, const ManifestEntry& b) {
              return a.iteration < b.iteration;
            });

  std::vector<std::string> pruned;
  if (keep_ > 0 && entries.size() > keep_) {
    const size_t drop = entries.size() - keep_;
    for (size_t i = 0; i < drop; ++i) {
      pruned.push_back(entries[i].file);
    }
    entries.erase(entries.begin(),
                  entries.begin() + static_cast<ptrdiff_t>(drop));
  }
  // Manifest first, then the pruned files: a crash between the two
  // leaves unreferenced snapshots (harmless), never a manifest entry
  // pointing at a deleted file.
  HETKG_RETURN_IF_ERROR(WriteManifest(entries));
  for (const std::string& file_name : pruned) {
    std::error_code ec;
    fs::remove(JoinPath(dir_, file_name), ec);
    // A tiered snapshot's cold sidecars ("<file>.cold<tag>") are only
    // reachable through its container; prune them with it or quantized
    // runs leak one slab-sized file per dropped snapshot.
    std::error_code scan_ec;
    for (const auto& entry : fs::directory_iterator(dir_, scan_ec)) {
      if (!entry.is_regular_file()) continue;
      std::string base;
      if (ParseColdSidecarName(entry.path().filename().string(), &base) &&
          base == file_name) {
        std::error_code remove_ec;
        fs::remove(entry.path(), remove_ec);
      }
    }
  }
  return Status::OK();
}

Result<std::vector<std::string>> CheckpointManager::ResumeCandidates(
    const std::string& resume_from) {
  std::error_code ec;
  if (fs::is_directory(resume_from, ec)) {
    CheckpointManager manager(resume_from, 0);
    HETKG_ASSIGN_OR_RETURN(std::vector<ManifestEntry> entries,
                           manager.ReadManifest());
    if (entries.empty()) {
      return Status::NotFound("no checkpoints in manifest of " + resume_from);
    }
    std::vector<std::string> candidates;
    for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
      candidates.push_back(JoinPath(resume_from, it->file));
    }
    return candidates;
  }
  if (!fs::exists(resume_from, ec)) {
    return Status::NotFound("resume path does not exist: " + resume_from);
  }
  return std::vector<std::string>{resume_from};
}

}  // namespace hetkg::core
