#include "core/pbg_engine.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "obs/trace.h"

namespace hetkg::core {

namespace {
constexpr uint64_t kUpdateFlopsPerParam = 6;
}  // namespace

PbgEngine::PbgEngine(const TrainerConfig& config,
                     const graph::KnowledgeGraph& graph)
    : config_(config),
      graph_(graph),
      cluster_(config.num_machines, config.network, config.compute),
      transport_(&cluster_, config.fault),
      rng_(config.seed ^ 0xB16) {}

Result<std::unique_ptr<PbgEngine>> PbgEngine::Create(
    const TrainerConfig& config, const graph::KnowledgeGraph& graph,
    const std::vector<Triple>& train) {
  if (config.num_machines == 0) {
    return Status::InvalidArgument("need at least one machine");
  }
  if (train.empty()) {
    return Status::InvalidArgument("empty training set");
  }
  if (config.pbg_partitions < config.num_machines) {
    return Status::InvalidArgument(
        "PBG needs at least as many partitions as machines");
  }
  std::unique_ptr<PbgEngine> engine(new PbgEngine(config, graph));
  HETKG_RETURN_IF_ERROR(engine->Setup(train));
  return engine;
}

Status PbgEngine::Setup(const std::vector<Triple>& train) {
  if (config_.sync.async_pipeline) {
    // The staged pipeline engine (DESIGN.md §12) covers the PS-based
    // systems; PBG's bucket scheduler is already its own overlap model.
    HETKG_LOG(Warning)
        << "--async applies to the PS engines; PBG trains serially";
  }
  // Kernel dispatch for the score/optimizer hot loops. Every path is
  // bit-identical (DESIGN.md §10), so this only affects speed.
  HETKG_ASSIGN_OR_RETURN(const embedding::kernels::KernelMode kernel_mode,
                         embedding::kernels::ParseKernelMode(config_.kernel));
  embedding::kernels::SetKernelMode(kernel_mode);
  embedding::kernels::LogDispatchOnce();

  HETKG_ASSIGN_OR_RETURN(
      score_fn_, embedding::MakeScoreFunction(config_.model, config_.dim));
  HETKG_ASSIGN_OR_RETURN(
      loss_fn_,
      embedding::MakeLossFunction(config_.loss, config_.margin,
                                  config_.negatives_per_positive));

  HETKG_ASSIGN_OR_RETURN(
      graph::KnowledgeGraph train_graph,
      graph::KnowledgeGraph::Create(graph_.num_entities(),
                                    graph_.num_relations(), train,
                                    "train"));
  partition::PbgBucketizer bucketizer(config_.seed);
  HETKG_ASSIGN_OR_RETURN(
      plan_, bucketizer.Build(train_graph, config_.pbg_partitions,
                              config_.num_machines));

  partition_entities_.assign(plan_.num_partitions, {});
  for (EntityId e = 0; e < graph_.num_entities(); ++e) {
    partition_entities_[plan_.entity_part[e]].push_back(e);
  }

  const size_t relation_dim = score_fn_->RelationDim(config_.dim);
  entities_ = embedding::EmbeddingTable(graph_.num_entities(), config_.dim);
  relations_ =
      embedding::EmbeddingTable(graph_.num_relations(), relation_dim);
  Rng init_rng(config_.seed ^ 0xE1B0);
  entities_.InitXavierUniform(&init_rng);
  relations_.InitXavierUniform(&init_rng);
  if (score_fn_->NormalizesEntities()) {
    for (size_t e = 0; e < entities_.num_rows(); ++e) {
      entities_.L2NormalizeRow(e);
    }
  }
  entity_opt_ = std::make_unique<embedding::AdaGrad>(
      graph_.num_entities(), config_.dim, config_.learning_rate);
  relation_opt_ = std::make_unique<embedding::AdaGrad>(
      graph_.num_relations(), relation_dim, config_.learning_rate);
  lookup_ = TableLookup(&entities_, &relations_);

  // Worker compute fans out over this pool; bucket scheduling, partition
  // swaps, and rng sampling stay single-threaded.
  if (config_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(config_.num_threads);
  }

  machine_held_.assign(config_.num_machines, {});
  obs_active_ = config_.obs.Enabled();

  if (!config_.checkpoint_dir.empty()) {
    ckpt_manager_ = std::make_unique<CheckpointManager>(
        config_.checkpoint_dir, config_.keep_checkpoints,
        config_.checkpoint_fsync);
    HETKG_ASSIGN_OR_RETURN(const size_t orphan_temps,
                           ckpt_manager_->Prepare());
    if (orphan_temps > 0) {
      recovery_metrics_.Increment(metric::kCheckpointOrphanTemps,
                                  orphan_temps);
    }
  }
  return Status::OK();
}

void PbgEngine::SwapPartitions(uint32_t machine, uint32_t i, uint32_t j) {
  obs::TraceSpan span("pbg.swap", "pbg");
  span.Arg("machine", static_cast<double>(machine));
  std::vector<uint32_t> want = {i};
  if (j != i) want.push_back(j);

  auto& held = machine_held_[machine];
  const uint64_t row_bytes = config_.dim * sizeof(float);

  // Save partitions no longer needed (embeddings + optimizer state go
  // back to the shared filesystem).
  for (uint32_t p : held) {
    if (std::find(want.begin(), want.end(), p) != want.end()) continue;
    const uint64_t bytes = partition_entities_[p].size() * row_bytes * 2;
    cluster_.RecordExternalOut(machine, bytes);
    metrics_.Increment(metric::kPartitionSwaps);
    metrics_.Increment(metric::kPartitionSwapBytes, bytes);
  }
  // Load the missing ones.
  for (uint32_t p : want) {
    if (std::find(held.begin(), held.end(), p) != held.end()) continue;
    const uint64_t bytes = partition_entities_[p].size() * row_bytes * 2;
    cluster_.RecordExternalIn(machine, bytes);
    metrics_.Increment(metric::kPartitionSwaps);
    metrics_.Increment(metric::kPartitionSwapBytes, bytes);
  }
  held = want;
}

std::pair<double, uint64_t> PbgEngine::TrainBucket(uint32_t machine,
                                                   uint32_t bucket_id) {
  obs::TraceSpan bucket_span("pbg.bucket", "pbg");
  bucket_span.Arg("bucket", static_cast<double>(bucket_id));
  bucket_span.Arg("machine", static_cast<double>(machine));
  // Per-phase simulated time (see PsTrainingEngine::Step).
  const bool obs = obs_active_;
  double phase_mark =
      obs ? cluster_.MachineTime(machine).total_seconds() : 0.0;
  auto account = [&](double* bucket_seconds) {
    if (!obs) return;
    const double now = cluster_.MachineTime(machine).total_seconds();
    *bucket_seconds += now - phase_mark;
    phase_mark = now;
  };

  const uint32_t i =
      static_cast<uint32_t>(bucket_id / plan_.num_partitions);
  const uint32_t j =
      static_cast<uint32_t>(bucket_id % plan_.num_partitions);
  SwapPartitions(machine, i, j);
  account(&phase_.swap);

  // Candidate pool for corruption: only the loaded partitions (PBG
  // samples negatives from in-memory partitions).
  const auto& pool_i = partition_entities_[i];
  const auto& pool_j = partition_entities_[j];
  const size_t pool_size = pool_i.size() + (j != i ? pool_j.size() : 0);
  auto pool_at = [&](uint64_t idx) -> EntityId {
    return idx < pool_i.size() ? pool_i[idx]
                               : pool_j[idx - pool_i.size()];
  };

  std::vector<Triple> triples = plan_.bucket_triples[bucket_id];
  rng_.Shuffle(&triples);

  const size_t relation_dim = score_fn_->RelationDim(config_.dim);
  const uint64_t dense_relation_bytes =
      graph_.num_relations() * relation_dim * sizeof(float);

  double loss_sum = 0.0;
  uint64_t pairs = 0;
  const uint64_t score_flops = score_fn_->FlopsPerTriple(config_.dim);
  const size_t sync_period = std::max<size_t>(
      1, config_.pbg_relation_sync_period);
  size_t iteration_in_bucket = 0;

  std::vector<Triple> batch_negatives;
  for (size_t begin = 0; begin < triples.size();
       begin += config_.batch_size) {
    const size_t end = std::min(triples.size(), begin + config_.batch_size);
    const size_t batch_count = end - begin;

    // Materialize the batch's negatives serially first: the rng_ stream
    // (one NextBounded + one NextBernoulli per negative, in triple
    // order) is exactly what the old inline loop consumed, so sampling
    // is unchanged by the parallel scoring that follows.
    batch_negatives.clear();
    scratch_pairs_.clear();
    for (size_t b = begin; b < end; ++b) {
      const Triple& pos = triples[b];
      for (size_t k = 0; k < config_.negatives_per_positive; ++k) {
        if (pool_size == 0) break;
        const EntityId replacement = pool_at(rng_.NextBounded(pool_size));
        const bool corrupt_head = rng_.NextBernoulli(0.5);
        Triple neg = pos;
        (corrupt_head ? neg.head : neg.tail) = replacement;
        batch_negatives.push_back(neg);
        ResolvedPair pair;
        pair.positive_index = static_cast<uint32_t>(b - begin);
        scratch_pairs_.push_back(pair);
      }
    }

    // Resolve every key the batch touches to a dense index once
    // (sorted-unique list + binary search), so the score/backward hot
    // loops index spans instead of hashing.
    scratch_keys_.clear();
    for (size_t b = begin; b < end; ++b) {
      const Triple& pos = triples[b];
      scratch_keys_.push_back(EntityKey(pos.head));
      scratch_keys_.push_back(RelationKey(pos.relation));
      scratch_keys_.push_back(EntityKey(pos.tail));
    }
    for (const Triple& neg : batch_negatives) {
      scratch_keys_.push_back(EntityKey(neg.head));
      scratch_keys_.push_back(EntityKey(neg.tail));
    }
    std::sort(scratch_keys_.begin(), scratch_keys_.end());
    scratch_keys_.erase(
        std::unique(scratch_keys_.begin(), scratch_keys_.end()),
        scratch_keys_.end());
    const size_t num_keys = scratch_keys_.size();

    scratch_grad_offsets_.assign(1, 0);
    scratch_row_spans_.clear();
    for (EmbKey key : scratch_keys_) {
      if (IsRelationKey(key)) {
        scratch_row_spans_.push_back(relations_.Row(KeyRelation(key)));
        scratch_grad_offsets_.push_back(scratch_grad_offsets_.back() +
                                        relation_dim);
      } else {
        scratch_row_spans_.push_back(entities_.Row(KeyEntity(key)));
        scratch_grad_offsets_.push_back(scratch_grad_offsets_.back() +
                                        config_.dim);
      }
    }
    auto key_index = [&](EmbKey key) -> uint32_t {
      return static_cast<uint32_t>(
          std::lower_bound(scratch_keys_.begin(), scratch_keys_.end(), key) -
          scratch_keys_.begin());
    };

    scratch_positives_.clear();
    for (size_t b = begin; b < end; ++b) {
      const Triple& pos = triples[b];
      ResolvedTriple rt;
      rt.head = key_index(EntityKey(pos.head));
      rt.relation = key_index(RelationKey(pos.relation));
      rt.tail = key_index(EntityKey(pos.tail));
      scratch_positives_.push_back(rt);
    }
    for (size_t p = 0; p < scratch_pairs_.size(); ++p) {
      const Triple& neg = batch_negatives[p];
      ResolvedTriple& nt = scratch_pairs_[p].negative;
      nt.head = key_index(EntityKey(neg.head));
      nt.relation = key_index(RelationKey(neg.relation));
      nt.tail = key_index(EntityKey(neg.tail));
    }

    scratch_grads_.assign(scratch_grad_offsets_.back(), 0.0f);
    const BatchStats stats = scorer_.Run(
        *score_fn_, *loss_fn_, scratch_positives_, scratch_pairs_,
        scratch_row_spans_, scratch_grad_offsets_, scratch_grads_,
        &scratch_pos_scores_, pool_.get());
    loss_sum += stats.loss_sum;
    pairs += stats.pairs;
    const uint64_t scored = batch_count + stats.pairs;
    cluster_.RecordCompute(
        machine, (scored + stats.backward_calls) * score_flops / 2);

    // Apply updates: entities locally (the partitions are resident);
    // relations locally, then the DENSE relation weights are pushed to /
    // pulled from the shared parameter server hosted on machine 0.
    // All-zero rows were never touched by a backward call and are
    // skipped, matching the old hash-map scratch behaviour.
    uint64_t updated_params = 0;
    for (size_t k = 0; k < num_keys; ++k) {
      const std::span<float> g(
          scratch_grads_.data() + scratch_grad_offsets_[k],
          scratch_grad_offsets_[k + 1] - scratch_grad_offsets_[k]);
      const bool touched = std::any_of(g.begin(), g.end(),
                                       [](float v) { return v != 0.0f; });
      if (!touched) continue;
      updated_params += g.size();
      const EmbKey key = scratch_keys_[k];
      if (IsRelationKey(key)) {
        const RelationId r = KeyRelation(key);
        relation_opt_->ApplyBatch(r, relations_.Row(r), g);
      } else {
        const EntityId e = KeyEntity(key);
        entity_opt_->ApplyBatch(e, entities_.Row(e), g);
        if (score_fn_->NormalizesEntities()) {
          entities_.L2NormalizeRow(e);
        }
      }
    }
    cluster_.RecordCompute(machine, updated_params * kUpdateFlopsPerParam);
    account(&phase_.compute);

    // Dense relation weights round-trip to the shared parameter server
    // (hosted on machine 0) every `sync_period` iterations — PBG's
    // rate-limited asynchronous relation synchronization.
    if (iteration_in_bucket % sync_period == 0) {
      if (machine == 0) {
        cluster_.RecordLocalCopy(0, 2 * dense_relation_bytes);
        metrics_.Increment(metric::kDenseRelationBytes,
                           2 * dense_relation_bytes);
      } else {
        // Push-then-pull round-trip with the shared PS on machine 0.
        // When the exchange exhausts its retries the sync is skipped —
        // the machine trains on its local relation weights until the
        // next period (graceful degradation; PBG's async PS has the
        // same behaviour under backpressure).
        const sim::Delivery delivery = transport_.Exchange(
            machine, 0, dense_relation_bytes, dense_relation_bytes);
        if (delivery.delivered) {
          metrics_.Increment(metric::kDenseRelationBytes,
                             2 * dense_relation_bytes);
        } else {
          metrics_.Increment(metric::kTransportSkippedSyncs);
          obs::Tracer::Instant("net.skipped_sync", "net", "machine",
                               static_cast<double>(machine));
        }
      }
    }
    account(&phase_.relation_sync);
    ++iteration_in_bucket;
    metrics_.Increment(metric::kTriplesTrained, end - begin);
  }
  return {loss_sum, pairs};
}

void PbgEngine::EnableValidation(const graph::KnowledgeGraph* graph,
                                 std::span<const Triple> valid,
                                 const eval::EvalOptions& options) {
  valid_graph_ = graph;
  valid_triples_ = valid;
  valid_options_ = options;
  if (valid_options_.pool == nullptr) {
    valid_options_.pool = pool_.get();  // Lend the engine's pool.
  }
}

MetricRegistry PbgEngine::CollectObsMetrics(double sim_seconds) const {
  MetricRegistry m;
  m.Merge(metrics_);
  // Empty unless a fault fired, keeping fault-free reports unchanged.
  m.Merge(transport_.metrics());
  if (obs_active_) {
    m.SetGauge(metric::kSimSeconds, sim_seconds);
    m.SetGauge(metric::kPhaseSwapSeconds, phase_.swap);
    m.SetGauge(metric::kPhaseComputeSeconds, phase_.compute);
    m.SetGauge(metric::kPhaseRelationSyncSeconds, phase_.relation_sync);
    m.SetGauge(metric::kKernelDispatch, embedding::kernels::DispatchGauge());
  }
  return m;
}

Result<TrainReport> PbgEngine::Train(size_t num_epochs) {
  obs::TracerLease trace_lease{obs::TraceOptions{config_.obs.trace_out}};
  const bool metrics_on = config_.obs.MetricsRequested();
  Stopwatch train_wall;

  size_t start_epoch = 0;
  if (resume_pending_) {
    resume_pending_ = false;
    start_epoch = epochs_done_;
  } else {
    epochs_done_ = 0;
    cumulative_seconds_ = 0.0;
  }

  TrainReport report;
  for (size_t epoch = start_epoch; epoch < num_epochs; ++epoch) {
    obs::TraceSpan epoch_span("pbg.epoch", "pbg");
    epoch_span.Arg("epoch", static_cast<double>(epoch));
    double loss_sum = 0.0;
    uint64_t pair_count = 0;
    sim::TimeBreakdown epoch_time;
    uint64_t epoch_remote_bytes = 0;
    size_t round_index = 0;

    Stopwatch wall;
    // Lock-server rounds: buckets inside a round run concurrently on
    // distinct machines, so the round's cost is its critical path and
    // the epoch is the sum of rounds (a machine idles when its round
    // has no bucket for it — exactly PBG's scheduling stall).
    for (const auto& round : plan_.schedule) {
      cluster_.Reset();
      for (size_t slot = 0; slot < round.size(); ++slot) {
        const uint32_t machine =
            static_cast<uint32_t>(slot % config_.num_machines);
        MaybeInjectProcessFaults();
        const auto [loss, pairs] = TrainBucket(machine, round[slot]);
        loss_sum += loss;
        pair_count += pairs;
      }
      const sim::TimeBreakdown round_time = cluster_.CriticalPath();
      epoch_time.compute_seconds += round_time.compute_seconds;
      epoch_time.comm_seconds += round_time.comm_seconds;
      epoch_remote_bytes += cluster_.TotalRemoteBytes();
      ++round_index;
      const double sim_now =
          cumulative_seconds_ + epoch_time.total_seconds();
      if (obs::Tracer::Enabled()) {
        obs::Tracer::PublishSimSeconds(sim_now);
        obs::Tracer::Counter(
            "net.remote_bytes",
            static_cast<double>(report.total_remote_bytes +
                                epoch_remote_bytes));
      }
      // PBG has no iteration-level staleness window; when a window is
      // requested, sample at lock-server round granularity instead.
      if (metrics_on && config_.obs.metrics_window > 0 &&
          round_index % config_.obs.metrics_window == 0 &&
          round_index != plan_.schedule.size()) {
        obs::MetricsSample sample;
        sample.kind = "window";
        sample.epoch = epoch;
        sample.iteration = round_index;
        sample.sim_seconds = sim_now;
        sample.wall_seconds = train_wall.ElapsedSeconds();
        sample.metrics = CollectObsMetrics(sim_now);
        report.metrics_series.Add(std::move(sample));
      }
    }

    EpochReport er;
    er.epoch = epoch;
    er.mean_loss = pair_count == 0 ? 0.0 : loss_sum / pair_count;
    er.epoch_time = epoch_time;
    cumulative_seconds_ += epoch_time.total_seconds();
    er.cumulative_seconds = cumulative_seconds_;
    er.wall_seconds = wall.ElapsedSeconds();
    er.cache_hit_ratio = 0.0;
    er.remote_bytes = epoch_remote_bytes;
    report.total_remote_bytes += epoch_remote_bytes;
    report.total_time.compute_seconds += epoch_time.compute_seconds;
    report.total_time.comm_seconds += epoch_time.comm_seconds;
    report.total_wall_seconds += er.wall_seconds;

    if (valid_graph_ != nullptr && !valid_triples_.empty()) {
      HETKG_ASSIGN_OR_RETURN(
          er.valid_metrics,
          eval::EvaluateLinkPrediction(lookup_, *score_fn_, *valid_graph_,
                                       valid_triples_, valid_options_));
      er.has_valid_metrics = true;
    }
    report.epochs.push_back(er);
    epochs_done_ = epoch + 1;

    if (ckpt_manager_ != nullptr && config_.checkpoint_every > 0 &&
        epochs_done_ % config_.checkpoint_every == 0) {
      obs::TraceSpan ckpt_span("ckpt.save", "ckpt");
      ckpt_span.Arg("epoch", static_cast<double>(epochs_done_));
      embedding::CheckpointWriter writer;
      BuildSnapshot(&writer);
      // PBG counts saves in the process-local registry (unlike the PS
      // engines, whose save counters ride inside the snapshot): the
      // serialized metrics_ then never mention checkpointing, so a
      // resumed run's report matches a reference run trained without
      // any checkpoint configuration at all.
      recovery_metrics_.Increment(metric::kCheckpointSaves);
      recovery_metrics_.Increment(metric::kCheckpointBytes,
                                  writer.payload_bytes());
      HETKG_RETURN_IF_ERROR(
          writer.WriteAtomic(ckpt_manager_->SnapshotPath(epochs_done_),
                             config_.checkpoint_fsync));
      HETKG_RETURN_IF_ERROR(ckpt_manager_->Commit(epochs_done_));
    }

    if (metrics_on) {
      obs::MetricsSample sample;
      sample.kind = "epoch";
      sample.epoch = epoch;
      sample.iteration = plan_.schedule.size();
      sample.sim_seconds = cumulative_seconds_;
      sample.wall_seconds = train_wall.ElapsedSeconds();
      sample.metrics = CollectObsMetrics(cumulative_seconds_);
      report.metrics_series.Add(std::move(sample));
    }
  }
  report.metrics = CollectObsMetrics(cumulative_seconds_);
  if (trace_lease.owns()) {
    const uint64_t dropped = obs::Tracer::DroppedEvents();
    if (dropped > 0) {
      report.metrics.Increment(metric::kTraceDroppedEvents, dropped);
    }
    const Status trace_status = trace_lease.Finish();
    if (!trace_status.ok()) {
      HETKG_LOG(Warning) << "trace write failed: "
                         << trace_status.ToString();
    }
  }
  if (metrics_on) {
    const Status status =
        report.metrics_series.WriteJson(config_.obs.metrics_json);
    if (!status.ok()) {
      HETKG_LOG(Warning) << "metrics export failed: " << status.ToString();
    }
  }
  return report;
}

// ---------------------------------------------------------------------------
// Crash recovery (DESIGN.md §9), epoch granularity.

void PbgEngine::MaybeInjectProcessFaults() {
  if (!transport_.HasPendingProcessFaults()) return;
  for (const sim::ProcessFault& fault : transport_.TakeDueProcessFaults()) {
    if (fault.machine >= config_.num_machines) {
      HETKG_LOG(Warning) << "process fault targets machine "
                         << fault.machine << " of " << config_.num_machines
                         << "; ignored";
      continue;
    }
    switch (fault.kind) {
      case sim::ProcessFaultKind::kWorkerCrash:
        obs::Tracer::Instant("recovery.worker_crash", "recovery",
                             "machine", static_cast<double>(fault.machine));
        // The crashed trainer loses its resident partitions; the next
        // bucket it takes reloads them from the shared filesystem
        // through the ordinary SwapPartitions accounting. Partition
        // saves happen at bucket boundaries, so nothing written there
        // is lost.
        machine_held_[fault.machine].clear();
        metrics_.Increment(metric::kRecoveryWorkerCrashes);
        break;
      case sim::ProcessFaultKind::kPsShardRestart:
        // The shared relation PS mirrors dense weights every machine
        // also holds locally; a restart re-seeds from any trainer's
        // copy at the next sync, so only the event is recorded.
        obs::Tracer::Instant("recovery.ps_shard_restart", "recovery",
                             "machine", static_cast<double>(fault.machine));
        metrics_.Increment(metric::kRecoveryPsShardRestarts);
        break;
    }
  }
}

void PbgEngine::BuildSnapshot(embedding::CheckpointWriter* writer) const {
  ByteWriter meta;
  meta.Str(name());
  meta.U64(config_.num_machines);
  meta.U64(config_.dim);
  meta.U64(score_fn_->RelationDim(config_.dim));
  meta.U64(config_.batch_size);
  meta.U64(config_.pbg_partitions);
  meta.U64(config_.seed);
  writer->AddSection(embedding::SectionTag::kTrainerMeta, std::move(meta));

  embedding::AppendTableSection(writer, embedding::SectionTag::kEntityTable,
                                entities_);
  embedding::AppendTableSection(writer,
                                embedding::SectionTag::kRelationTable,
                                relations_);

  ByteWriter state;
  state.U64(epochs_done_);
  state.F64(cumulative_seconds_);
  state.F64(phase_.swap);
  state.F64(phase_.compute);
  state.F64(phase_.relation_sync);
  rng_.SaveState(&state);
  entity_opt_->SaveState(&state);
  relation_opt_->SaveState(&state);
  state.U64(machine_held_.size());
  for (const std::vector<uint32_t>& held : machine_held_) {
    state.U64(held.size());
    for (uint32_t p : held) state.U32(p);
  }
  metrics_.SaveState(&state);
  writer->AddSection(embedding::SectionTag::kPbgState, std::move(state));

  ByteWriter cluster_state;
  cluster_.SaveState(&cluster_state);
  transport_.SaveState(&cluster_state);
  writer->AddSection(embedding::SectionTag::kClusterState,
                     std::move(cluster_state));
}

Status PbgEngine::SaveTrainState(const std::string& path) const {
  embedding::CheckpointWriter writer;
  BuildSnapshot(&writer);
  return writer.WriteAtomic(path, config_.checkpoint_fsync);
}

Status PbgEngine::RestoreFromFile(const std::string& path) {
  HETKG_ASSIGN_OR_RETURN(const embedding::CheckpointReader reader,
                         embedding::CheckpointReader::Open(path));
  const std::string* meta =
      reader.Find(embedding::SectionTag::kTrainerMeta);
  if (meta == nullptr) {
    return Status::Corruption("snapshot missing trainer meta section");
  }
  ByteReader mr(*meta);
  const std::string snap_name = mr.Str();
  const uint64_t machines = mr.U64();
  const uint64_t dim = mr.U64();
  const uint64_t relation_dim = mr.U64();
  const uint64_t batch_size = mr.U64();
  const uint64_t partitions = mr.U64();
  const uint64_t seed = mr.U64();
  if (!mr.ok() || mr.remaining() != 0) {
    return Status::Corruption("bad trainer meta section");
  }
  if (snap_name != name() || machines != config_.num_machines ||
      dim != config_.dim ||
      relation_dim != score_fn_->RelationDim(config_.dim) ||
      batch_size != config_.batch_size ||
      partitions != config_.pbg_partitions || seed != config_.seed) {
    return Status::FailedPrecondition(
        "snapshot was written by a different training configuration");
  }

  HETKG_ASSIGN_OR_RETURN(
      embedding::EmbeddingTable entities,
      ReadTableSection(reader, embedding::SectionTag::kEntityTable));
  HETKG_ASSIGN_OR_RETURN(
      embedding::EmbeddingTable relations,
      ReadTableSection(reader, embedding::SectionTag::kRelationTable));
  if (entities.num_rows() != entities_.num_rows() ||
      entities.dim() != entities_.dim() ||
      relations.num_rows() != relations_.num_rows() ||
      relations.dim() != relations_.dim()) {
    return Status::Corruption("snapshot table shape mismatch");
  }

  const std::string* ps = reader.Find(embedding::SectionTag::kPbgState);
  if (ps == nullptr) {
    return Status::Corruption("snapshot missing PBG state section");
  }
  ByteReader sr(*ps);
  const uint64_t epochs_done = sr.U64();
  const double cumulative = sr.F64();
  PhaseSeconds phase;
  phase.swap = sr.F64();
  phase.compute = sr.F64();
  phase.relation_sync = sr.F64();
  Rng rng(0);
  embedding::AdaGrad entity_opt(entity_opt_->num_rows(), entity_opt_->dim(),
                                entity_opt_->learning_rate(),
                                entity_opt_->epsilon());
  embedding::AdaGrad relation_opt(relation_opt_->num_rows(),
                                  relation_opt_->dim(),
                                  relation_opt_->learning_rate(),
                                  relation_opt_->epsilon());
  if (!sr.ok() || !rng.LoadState(&sr) || !entity_opt.LoadState(&sr) ||
      !relation_opt.LoadState(&sr)) {
    return Status::Corruption("bad PBG state section");
  }
  const uint64_t held_count = sr.U64();
  if (!sr.ok() || held_count != machine_held_.size()) {
    return Status::Corruption("bad PBG state section");
  }
  std::vector<std::vector<uint32_t>> held(machine_held_.size());
  for (std::vector<uint32_t>& partitions_held : held) {
    const uint64_t n = sr.U64();
    if (!sr.ok() || n > plan_.num_partitions) {
      return Status::Corruption("bad PBG state section");
    }
    partitions_held.resize(n);
    for (uint32_t& p : partitions_held) {
      p = sr.U32();
      if (!sr.ok() || p >= plan_.num_partitions) {
        return Status::Corruption("bad PBG state section");
      }
    }
  }
  MetricRegistry metrics;
  if (!metrics.LoadState(&sr) || sr.remaining() != 0) {
    return Status::Corruption("bad PBG state section");
  }

  const std::string* cs =
      reader.Find(embedding::SectionTag::kClusterState);
  if (cs == nullptr) {
    return Status::Corruption("snapshot missing cluster section");
  }
  ByteReader cr(*cs);
  if (!cluster_.LoadState(&cr) || !transport_.LoadState(&cr) ||
      cr.remaining() != 0) {
    return Status::Corruption("bad cluster section");
  }

  entities_ = std::move(entities);
  relations_ = std::move(relations);
  lookup_ = TableLookup(&entities_, &relations_);
  *entity_opt_ = std::move(entity_opt);
  *relation_opt_ = std::move(relation_opt);
  rng_ = rng;
  machine_held_ = std::move(held);
  metrics_ = std::move(metrics);
  epochs_done_ = static_cast<size_t>(epochs_done);
  cumulative_seconds_ = cumulative;
  phase_ = phase;
  resume_pending_ = true;
  return Status::OK();
}

Status PbgEngine::RestoreTrainState(const std::string& path_or_dir) {
  HETKG_ASSIGN_OR_RETURN(
      const std::vector<std::string> candidates,
      CheckpointManager::ResumeCandidates(path_or_dir));
  Status last = Status::NotFound("no resume candidates");
  for (size_t i = 0; i < candidates.size(); ++i) {
    const Status status = RestoreFromFile(candidates[i]);
    if (status.ok()) {
      recovery_metrics_.Increment(metric::kCheckpointRestores);
      obs::Tracer::Instant("ckpt.restore", "ckpt", "epoch",
                           static_cast<double>(epochs_done_));
      return status;
    }
    HETKG_LOG(Warning) << "snapshot " << candidates[i]
                       << " rejected: " << status.ToString();
    if (i + 1 < candidates.size()) {
      recovery_metrics_.Increment(metric::kCheckpointFallbacks);
    }
    last = status;
  }
  return last;
}

}  // namespace hetkg::core
