#include "core/pbg_engine.h"

#include <algorithm>
#include <numeric>

#include "common/stopwatch.h"

namespace hetkg::core {

namespace {
constexpr uint64_t kUpdateFlopsPerParam = 6;
}  // namespace

PbgEngine::PbgEngine(const TrainerConfig& config,
                     const graph::KnowledgeGraph& graph)
    : config_(config),
      graph_(graph),
      cluster_(config.num_machines, config.network, config.compute),
      rng_(config.seed ^ 0xB16) {}

Result<std::unique_ptr<PbgEngine>> PbgEngine::Create(
    const TrainerConfig& config, const graph::KnowledgeGraph& graph,
    const std::vector<Triple>& train) {
  if (config.num_machines == 0) {
    return Status::InvalidArgument("need at least one machine");
  }
  if (train.empty()) {
    return Status::InvalidArgument("empty training set");
  }
  if (config.pbg_partitions < config.num_machines) {
    return Status::InvalidArgument(
        "PBG needs at least as many partitions as machines");
  }
  std::unique_ptr<PbgEngine> engine(new PbgEngine(config, graph));
  HETKG_RETURN_IF_ERROR(engine->Setup(train));
  return engine;
}

Status PbgEngine::Setup(const std::vector<Triple>& train) {
  HETKG_ASSIGN_OR_RETURN(
      score_fn_, embedding::MakeScoreFunction(config_.model, config_.dim));
  HETKG_ASSIGN_OR_RETURN(
      loss_fn_,
      embedding::MakeLossFunction(config_.loss, config_.margin,
                                  config_.negatives_per_positive));

  HETKG_ASSIGN_OR_RETURN(
      graph::KnowledgeGraph train_graph,
      graph::KnowledgeGraph::Create(graph_.num_entities(),
                                    graph_.num_relations(), train,
                                    "train"));
  partition::PbgBucketizer bucketizer(config_.seed);
  HETKG_ASSIGN_OR_RETURN(
      plan_, bucketizer.Build(train_graph, config_.pbg_partitions,
                              config_.num_machines));

  partition_entities_.assign(plan_.num_partitions, {});
  for (EntityId e = 0; e < graph_.num_entities(); ++e) {
    partition_entities_[plan_.entity_part[e]].push_back(e);
  }

  const size_t relation_dim = score_fn_->RelationDim(config_.dim);
  entities_ = embedding::EmbeddingTable(graph_.num_entities(), config_.dim);
  relations_ =
      embedding::EmbeddingTable(graph_.num_relations(), relation_dim);
  Rng init_rng(config_.seed ^ 0xE1B0);
  entities_.InitXavierUniform(&init_rng);
  relations_.InitXavierUniform(&init_rng);
  if (score_fn_->NormalizesEntities()) {
    for (size_t e = 0; e < entities_.num_rows(); ++e) {
      entities_.L2NormalizeRow(e);
    }
  }
  entity_opt_ = std::make_unique<embedding::AdaGrad>(
      graph_.num_entities(), config_.dim, config_.learning_rate);
  relation_opt_ = std::make_unique<embedding::AdaGrad>(
      graph_.num_relations(), relation_dim, config_.learning_rate);
  lookup_ = TableLookup(&entities_, &relations_);

  machine_held_.assign(config_.num_machines, {});
  return Status::OK();
}

void PbgEngine::SwapPartitions(uint32_t machine, uint32_t i, uint32_t j) {
  std::vector<uint32_t> want = {i};
  if (j != i) want.push_back(j);

  auto& held = machine_held_[machine];
  const uint64_t row_bytes = config_.dim * sizeof(float);

  // Save partitions no longer needed (embeddings + optimizer state go
  // back to the shared filesystem).
  for (uint32_t p : held) {
    if (std::find(want.begin(), want.end(), p) != want.end()) continue;
    const uint64_t bytes = partition_entities_[p].size() * row_bytes * 2;
    cluster_.RecordExternalOut(machine, bytes);
    metrics_.Increment(metric::kPartitionSwaps);
    metrics_.Increment(metric::kPartitionSwapBytes, bytes);
  }
  // Load the missing ones.
  for (uint32_t p : want) {
    if (std::find(held.begin(), held.end(), p) != held.end()) continue;
    const uint64_t bytes = partition_entities_[p].size() * row_bytes * 2;
    cluster_.RecordExternalIn(machine, bytes);
    metrics_.Increment(metric::kPartitionSwaps);
    metrics_.Increment(metric::kPartitionSwapBytes, bytes);
  }
  held = want;
}

std::pair<double, uint64_t> PbgEngine::TrainBucket(uint32_t machine,
                                                   uint32_t bucket_id) {
  const uint32_t i =
      static_cast<uint32_t>(bucket_id / plan_.num_partitions);
  const uint32_t j =
      static_cast<uint32_t>(bucket_id % plan_.num_partitions);
  SwapPartitions(machine, i, j);

  // Candidate pool for corruption: only the loaded partitions (PBG
  // samples negatives from in-memory partitions).
  const auto& pool_i = partition_entities_[i];
  const auto& pool_j = partition_entities_[j];
  const size_t pool_size = pool_i.size() + (j != i ? pool_j.size() : 0);
  auto pool_at = [&](uint64_t idx) -> EntityId {
    return idx < pool_i.size() ? pool_i[idx]
                               : pool_j[idx - pool_i.size()];
  };

  std::vector<Triple> triples = plan_.bucket_triples[bucket_id];
  rng_.Shuffle(&triples);

  const size_t relation_dim = score_fn_->RelationDim(config_.dim);
  const uint64_t dense_relation_bytes =
      graph_.num_relations() * relation_dim * sizeof(float);

  double loss_sum = 0.0;
  uint64_t pairs = 0;
  const uint64_t score_flops = score_fn_->FlopsPerTriple(config_.dim);
  const size_t sync_period = std::max<size_t>(
      1, config_.pbg_relation_sync_period);
  size_t iteration_in_bucket = 0;

  for (size_t begin = 0; begin < triples.size();
       begin += config_.batch_size) {
    const size_t end = std::min(triples.size(), begin + config_.batch_size);

    scratch_grads_.clear();
    auto grad = [&](EmbKey key, size_t width) -> std::span<float> {
      auto [it, inserted] = scratch_grads_.try_emplace(key);
      if (inserted) it->second.assign(width, 0.0f);
      return it->second;
    };

    uint64_t backward_calls = 0;
    uint64_t scored = 0;
    for (size_t b = begin; b < end; ++b) {
      const Triple& pos = triples[b];
      const auto h = entities_.Row(pos.head);
      const auto r = relations_.Row(pos.relation);
      const auto t = entities_.Row(pos.tail);
      const double pos_score = score_fn_->Score(h, r, t);
      ++scored;

      for (size_t k = 0; k < config_.negatives_per_positive; ++k) {
        if (pool_size == 0) break;
        const EntityId replacement = pool_at(rng_.NextBounded(pool_size));
        const bool corrupt_head = rng_.NextBernoulli(0.5);
        Triple neg = pos;
        (corrupt_head ? neg.head : neg.tail) = replacement;
        const double neg_score =
            score_fn_->Score(entities_.Row(neg.head), r,
                             entities_.Row(neg.tail));
        ++scored;
        const embedding::LossGrad lg =
            loss_fn_->PairLoss(pos_score, neg_score);
        loss_sum += lg.loss;
        ++pairs;
        if (lg.dpos != 0.0) {
          score_fn_->ScoreBackward(h, r, t, lg.dpos,
                                   grad(EntityKey(pos.head), config_.dim),
                                   grad(RelationKey(pos.relation),
                                        relation_dim),
                                   grad(EntityKey(pos.tail), config_.dim));
          ++backward_calls;
        }
        if (lg.dneg != 0.0) {
          score_fn_->ScoreBackward(entities_.Row(neg.head), r,
                                   entities_.Row(neg.tail), lg.dneg,
                                   grad(EntityKey(neg.head), config_.dim),
                                   grad(RelationKey(neg.relation),
                                        relation_dim),
                                   grad(EntityKey(neg.tail), config_.dim));
          ++backward_calls;
        }
      }
    }
    cluster_.RecordCompute(machine,
                           (scored + backward_calls) * score_flops / 2);

    // Apply updates: entities locally (the partitions are resident);
    // relations locally, then the DENSE relation weights are pushed to /
    // pulled from the shared parameter server hosted on machine 0.
    uint64_t updated_params = 0;
    for (auto& [key, g] : scratch_grads_) {
      updated_params += g.size();
      if (IsRelationKey(key)) {
        const RelationId r = KeyRelation(key);
        relation_opt_->Apply(r, relations_.Row(r), g);
      } else {
        const EntityId e = KeyEntity(key);
        entity_opt_->Apply(e, entities_.Row(e), g);
        if (score_fn_->NormalizesEntities()) {
          entities_.L2NormalizeRow(e);
        }
      }
    }
    cluster_.RecordCompute(machine, updated_params * kUpdateFlopsPerParam);

    // Dense relation weights round-trip to the shared parameter server
    // (hosted on machine 0) every `sync_period` iterations — PBG's
    // rate-limited asynchronous relation synchronization.
    if (iteration_in_bucket % sync_period == 0) {
      if (machine == 0) {
        cluster_.RecordLocalCopy(0, 2 * dense_relation_bytes);
      } else {
        cluster_.RecordRemoteMessage(machine, 0, dense_relation_bytes);
        cluster_.RecordRemoteMessage(0, machine, dense_relation_bytes);
      }
      metrics_.Increment(metric::kDenseRelationBytes,
                         2 * dense_relation_bytes);
    }
    ++iteration_in_bucket;
    metrics_.Increment(metric::kTriplesTrained, end - begin);
  }
  return {loss_sum, pairs};
}

void PbgEngine::EnableValidation(const graph::KnowledgeGraph* graph,
                                 std::span<const Triple> valid,
                                 const eval::EvalOptions& options) {
  valid_graph_ = graph;
  valid_triples_ = valid;
  valid_options_ = options;
}

Result<TrainReport> PbgEngine::Train(size_t num_epochs) {
  TrainReport report;
  double cumulative_seconds = 0.0;
  for (size_t epoch = 0; epoch < num_epochs; ++epoch) {
    double loss_sum = 0.0;
    uint64_t pair_count = 0;
    sim::TimeBreakdown epoch_time;
    uint64_t epoch_remote_bytes = 0;

    Stopwatch wall;
    // Lock-server rounds: buckets inside a round run concurrently on
    // distinct machines, so the round's cost is its critical path and
    // the epoch is the sum of rounds (a machine idles when its round
    // has no bucket for it — exactly PBG's scheduling stall).
    for (const auto& round : plan_.schedule) {
      cluster_.Reset();
      for (size_t slot = 0; slot < round.size(); ++slot) {
        const uint32_t machine =
            static_cast<uint32_t>(slot % config_.num_machines);
        const auto [loss, pairs] = TrainBucket(machine, round[slot]);
        loss_sum += loss;
        pair_count += pairs;
      }
      const sim::TimeBreakdown round_time = cluster_.CriticalPath();
      epoch_time.compute_seconds += round_time.compute_seconds;
      epoch_time.comm_seconds += round_time.comm_seconds;
      epoch_remote_bytes += cluster_.TotalRemoteBytes();
    }

    EpochReport er;
    er.epoch = epoch;
    er.mean_loss = pair_count == 0 ? 0.0 : loss_sum / pair_count;
    er.epoch_time = epoch_time;
    cumulative_seconds += epoch_time.total_seconds();
    er.cumulative_seconds = cumulative_seconds;
    er.wall_seconds = wall.ElapsedSeconds();
    er.cache_hit_ratio = 0.0;
    er.remote_bytes = epoch_remote_bytes;
    report.total_remote_bytes += epoch_remote_bytes;
    report.total_time.compute_seconds += epoch_time.compute_seconds;
    report.total_time.comm_seconds += epoch_time.comm_seconds;
    report.total_wall_seconds += er.wall_seconds;

    if (valid_graph_ != nullptr && !valid_triples_.empty()) {
      HETKG_ASSIGN_OR_RETURN(
          er.valid_metrics,
          eval::EvaluateLinkPrediction(lookup_, *score_fn_, *valid_graph_,
                                       valid_triples_, valid_options_));
      er.has_valid_metrics = true;
    }
    report.epochs.push_back(er);
  }
  report.metrics.Merge(metrics_);
  return report;
}

}  // namespace hetkg::core
