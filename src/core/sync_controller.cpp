#include "core/sync_controller.h"

namespace hetkg::core {

Result<SyncController> SyncController::Create(const SyncConfig& config) {
  // Cache-sync knobs only constrain configurations that actually run a
  // cache; kNone (DGL-KE-style) configs carry don't-care zeros and
  // nothing is ever written back.
  if (config.strategy != CacheStrategy::kNone) {
    if (config.staleness_bound == 0) {
      return Status::InvalidArgument("staleness bound P must be >= 1");
    }
    if (config.write_back_period == 0) {
      return Status::InvalidArgument("write-back period must be >= 1");
    }
  }
  if (config.strategy == CacheStrategy::kDps && config.dps_window == 0) {
    return Status::InvalidArgument("DPS window D must be >= 1");
  }
  return SyncController(config);
}

}  // namespace hetkg::core
