#include "core/sync_controller.h"

namespace hetkg::core {

Result<SyncController> SyncController::Create(const SyncConfig& config) {
  if (config.strategy != CacheStrategy::kNone &&
      config.staleness_bound == 0) {
    return Status::InvalidArgument("staleness bound P must be >= 1");
  }
  if (config.strategy == CacheStrategy::kDps && config.dps_window == 0) {
    return Status::InvalidArgument("DPS window D must be >= 1");
  }
  if (config.write_back_period == 0) {
    return Status::InvalidArgument("write-back period must be >= 1");
  }
  return SyncController(config);
}

}  // namespace hetkg::core
