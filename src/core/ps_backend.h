#ifndef HETKG_CORE_PS_BACKEND_H_
#define HETKG_CORE_PS_BACKEND_H_

#include <algorithm>
#include <span>
#include <string>

#include "ps/parameter_server.h"
#include "sim/cluster.h"

namespace hetkg::core {

/// The engine-side seam between the pipeline stages and the shared
/// PS/cluster state (DESIGN.md §13). Stage code never touches the
/// parameter server or the cluster simulator directly for mutating
/// operations — it goes through this interface, so the same stage code
/// runs in two deployments:
///
///   * sim runtime (LocalPsBackend): calls land on the in-process
///     ParameterServer/ClusterSim, exactly as before the seam existed.
///   * process runtime (net::RemotePsBackend): the stages run inside a
///     forked worker process and every call is forwarded as an RPC to
///     the coordinator process, which applies it to the authoritative
///     server/cluster in the same order the sim runtime would — the
///     basis of the sim/proc checkpoint bit-identity invariant.
///
/// Read-only configuration queries (RowDim, score-function shape) stay
/// direct: they are pure functions of the construction config, which
/// every process derives identically.
class PsBackend {
 public:
  virtual ~PsBackend() = default;

  /// ParameterServer::PullBatch with identical semantics: rows land in
  /// `out`, spans of failed (retry-exhausted) shards stay untouched and
  /// their indices are returned.
  virtual ps::PullResult PullBatch(uint32_t machine,
                                   std::span<const EmbKey> keys,
                                   std::span<std::span<float>> out) = 0;

  /// ParameterServer::PushGradBatch with identical semantics (the
  /// engine ignores the result, so the remote implementation may
  /// forward fire-and-forget).
  virtual ps::PushResult PushGradBatch(
      uint32_t machine, std::span<const EmbKey> keys,
      std::span<const std::span<const float>> grads) = 0;

  /// Unaccounted degraded read of a row's live value — the fallback
  /// after a pull exhausted its retries (DESIGN.md §7).
  virtual void ReadRow(EmbKey key, std::span<float> out) = 0;

  /// ClusterSim::RecordCompute for the calling worker's machine. The
  /// sim cost model stays authoritative in both runtimes, so modeled
  /// clocks (and hence fault-plan decisions) never diverge.
  virtual void RecordCompute(uint32_t machine, uint64_t flops) = 0;

  /// Server-side metric increment (cache.rebuilds, stale serves, ...).
  virtual void IncrementServerMetric(const std::string& name,
                                     uint64_t delta) = 0;

  /// Hotness hint for tiered storage (DESIGN.md §16): the keys the hot
  /// filter just admitted (or the prefetch window is about to pull) —
  /// the server madvise()s their cold pages in ahead of use. Purely
  /// advisory: results are identical with or without the call, so the
  /// remote runtime may drop it (default no-op) without breaking the
  /// sim/proc bit-identity invariant.
  virtual void AdviseHotKeys(std::span<const EmbKey> keys) {
    (void)keys;
  }
};

/// The sim-runtime backend: every call forwards to the in-process
/// server/cluster, bit-identical to the pre-seam direct calls.
class LocalPsBackend final : public PsBackend {
 public:
  LocalPsBackend(ps::ParameterServer* server, sim::ClusterSim* cluster)
      : server_(server), cluster_(cluster) {}

  ps::PullResult PullBatch(uint32_t machine, std::span<const EmbKey> keys,
                           std::span<std::span<float>> out) override {
    return server_->PullBatch(machine, keys, out);
  }

  ps::PushResult PushGradBatch(
      uint32_t machine, std::span<const EmbKey> keys,
      std::span<const std::span<const float>> grads) override {
    return server_->PushGradBatch(machine, keys, grads);
  }

  void ReadRow(EmbKey key, std::span<float> out) override {
    const std::span<const float> value = server_->Value(key);
    std::copy(value.begin(), value.end(), out.begin());
  }

  void RecordCompute(uint32_t machine, uint64_t flops) override {
    cluster_->RecordCompute(machine, flops);
  }

  void IncrementServerMetric(const std::string& name,
                             uint64_t delta) override {
    server_->metrics().Increment(name, delta);
  }

  void AdviseHotKeys(std::span<const EmbKey> keys) override {
    server_->AdviseHotKeys(keys);
  }

 private:
  ps::ParameterServer* server_;
  sim::ClusterSim* cluster_;
};

}  // namespace hetkg::core

#endif  // HETKG_CORE_PS_BACKEND_H_
