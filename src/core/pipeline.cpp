#include "core/pipeline.h"

namespace hetkg::core {

void PipelineStage::Start() {
  joined_ = false;
  thread_ = std::thread([this] {
    while (body_()) {
    }
  });
}

void PipelineStage::Join() {
  if (thread_.joinable()) thread_.join();
  joined_ = true;
}

PipelineStage* Pipeline::AddStage(std::string name,
                                  std::function<bool()> body) {
  stages_.push_back(
      std::make_unique<PipelineStage>(std::move(name), std::move(body)));
  return stages_.back().get();
}

void Pipeline::Start() {
  for (auto& stage : stages_) stage->Start();
}

void Pipeline::Join() {
  for (auto& stage : stages_) stage->Join();
}

void BoundedStalenessClock::Reset(size_t completed) {
  std::lock_guard<std::mutex> lock(mu_);
  completed_ = completed;
  waits_ = 0;
}

void BoundedStalenessClock::WaitAdmissible(size_t iter, size_t bound) {
  std::unique_lock<std::mutex> lock(mu_);
  if (iter > completed_ + bound) {
    ++waits_;
    advanced_.wait(lock, [&] { return iter <= completed_ + bound; });
  }
}

void BoundedStalenessClock::MarkCompleted(size_t iter) {
  std::lock_guard<std::mutex> lock(mu_);
  if (iter + 1 > completed_) completed_ = iter + 1;
  advanced_.notify_all();
}

size_t BoundedStalenessClock::completed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return completed_;
}

uint64_t BoundedStalenessClock::waits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return waits_;
}

}  // namespace hetkg::core
