#ifndef HETKG_CORE_PREFETCHER_H_
#define HETKG_CORE_PREFETCHER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "embedding/negative_sampler.h"
#include "graph/types.h"

namespace hetkg::core {

/// One training mini-batch: positive triples plus their corruptions.
struct MiniBatch {
  std::vector<Triple> positives;
  std::vector<embedding::NegativeSample> negatives;
};

/// Per-key access counts observed in a prefetch window (the `L_num` of
/// Algorithm 2).
using FrequencyMap = std::unordered_map<EmbKey, uint32_t>;

/// The output of Algorithm 1: the materialized sample list `L_s` for the
/// next D iterations, and the de-duplicated entity/relation access
/// counts `L_er` over that window.
struct PrefetchWindow {
  std::vector<MiniBatch> batches;
  FrequencyMap frequencies;
  uint64_t total_accesses = 0;
};

/// The paper's prefetching component (Algorithm 1). A worker's
/// prefetcher owns the local subgraph's sampling cursor: it shuffles the
/// worker's triples at each epoch boundary and deals consecutive
/// mini-batches, generating negatives through the configured sampler.
/// Prefetched batches ARE the batches later trained on (Algorithm 3
/// reads samples from the preload list), so prefetching costs no extra
/// sampling work — only moves it earlier.
class Prefetcher {
 public:
  /// `local_triples` must outlive the prefetcher. `sampler` is owned by
  /// the caller and shared with nothing else (its RNG advances here).
  Prefetcher(const std::vector<Triple>* local_triples, size_t batch_size,
             embedding::NegativeSampler* sampler, uint64_t seed);

  /// Iterations in one epoch over the local subgraph.
  size_t IterationsPerEpoch() const;

  /// Runs Algorithm 1 for the next `window_iterations` mini-batches.
  /// Each sample's accesses are counted once per occurrence in the
  /// window (entities of positives, corrupted entities, and relations).
  PrefetchWindow Prefetch(size_t window_iterations);

  /// Counting-only variant used by the CPS whole-epoch construction:
  /// accumulates frequencies into `freq` without materializing the
  /// batches (an epoch of batches would not fit in memory at
  /// Freebase-86m scale). Advances the same sampling cursor; returns
  /// the number of accesses counted.
  uint64_t PrefetchCountOnly(size_t window_iterations, FrequencyMap* freq);

  /// Serializes the sampling cursor (RNG stream, shuffled order, and
  /// position) so a restored prefetcher deals the exact batch sequence
  /// the saved one would have. The local triple list itself is rebuilt
  /// by the engine's deterministic setup and is validated by size here.
  void SaveState(ByteWriter* w) const;
  bool LoadState(ByteReader* r);

 private:
  /// Deals the next batch of positives, reshuffling at epoch wrap.
  void NextPositives(std::vector<Triple>* out);

  const std::vector<Triple>* local_triples_;
  size_t batch_size_;
  embedding::NegativeSampler* sampler_;
  Rng rng_;
  std::vector<uint32_t> order_;  // Shuffled triple indices.
  size_t cursor_ = 0;
};

/// Counts the embedding rows a mini-batch needs, into `freq`; returns
/// the number of accesses added. Shared by the prefetcher and by the
/// cache-policy comparison bench.
uint64_t CountBatchAccesses(const MiniBatch& batch, FrequencyMap* freq);

/// De-duplicated list of keys a mini-batch touches (the rows a worker
/// must have locally to run the iteration).
std::vector<EmbKey> BatchKeys(const MiniBatch& batch);

/// De-duplicated list of keys a whole prefetch window touches, in
/// first-access order. Tiered storage (DESIGN.md §16) feeds this to
/// madvise so the cold pages of upcoming pulls fault in ahead of use.
std::vector<EmbKey> WindowKeys(const PrefetchWindow& window);

}  // namespace hetkg::core

#endif  // HETKG_CORE_PREFETCHER_H_
