#ifndef HETKG_CORE_TRAINER_H_
#define HETKG_CORE_TRAINER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "embedding/checkpoint.h"
#include "core/sync_controller.h"
#include "embedding/score_function.h"
#include "eval/link_prediction.h"
#include "graph/knowledge_graph.h"
#include "obs/metrics_export.h"
#include "sim/cluster.h"
#include "sim/transport.h"

namespace hetkg::core {

/// The four systems the paper compares (Sec. VI).
enum class SystemKind {
  kHetKgCps,  // HET-KG-C: constant partial stale cache.
  kHetKgDps,  // HET-KG-D: dynamic partial stale cache.
  kDglKe,     // PS training without a worker cache.
  kPbg,       // Block training with lock server + dense relations.
};
std::string_view SystemKindName(SystemKind kind);
Result<SystemKind> ParseSystemKind(std::string_view name);

/// Everything needed to instantiate a distributed training run on the
/// simulated cluster. Defaults are the reduced single-core scale; the
/// paper-scale values are documented inline.
struct TrainerConfig {
  embedding::ModelKind model = embedding::ModelKind::kTransEL1;
  size_t dim = 32;                  // Paper: 400.
  double learning_rate = 0.1;      // Paper: 0.1.
  std::string loss = "margin";     // "margin" | "logistic".
  double margin = 1.0;
  size_t batch_size = 32;          // Paper: 32 (FB15k/WN18), 512 (FB-86m).
  size_t negatives_per_positive = 8;  // Paper: 8 / 128.
  std::string negative_sampler = "batched";  // "uniform" | "batched".
  size_t negative_chunk_size = 8;
  /// Fraction of negatives corrupting the relation instead of an
  /// endpoint (uniform sampler only; Sec. III-A's (h, r', t) variant).
  double relation_corruption_prob = 0.0;
  /// Draw replacement entities proportionally to degree^0.75 instead of
  /// uniformly (uniform sampler only).
  bool degree_weighted_negatives = false;

  size_t num_machines = 4;         // Paper: 4; one worker per machine.
  std::string partitioner = "metis";  // "metis" | "random".
  /// Compute threads for the intra-batch forward/backward fan-out (the
  /// deterministic parallel path: results are bit-identical at any
  /// value). 0 and 1 both mean serial execution. Simulation accounting
  /// and sampling stay single-threaded regardless.
  size_t num_threads = 1;
  /// Score/optimizer kernel dispatch: "auto" | "scalar" | "vector"
  /// (embedding/kernels.h). Every path produces the same bits — this is
  /// a pure performance knob, like num_threads. Under "auto" the
  /// HETKG_KERNEL environment variable can steer the choice.
  std::string kernel = "auto";

  /// Cache construction + synchronization (HET-KG systems only).
  SyncConfig sync;
  size_t cache_capacity = 4096;    // Hot-embedding rows per worker.
  double cache_entity_ratio = 0.25;
  bool heterogeneity_aware = true;

  /// PBG-only: number of entity partitions p (>= 2 * machines).
  size_t pbg_partitions = 8;
  /// PBG-only: iterations between dense relation-weight synchronizations
  /// with the shared parameter server. Real PBG syncs relation gradients
  /// through an asynchronous, rate-limited PS rather than per batch;
  /// this period models that rate.
  size_t pbg_relation_sync_period = 4;

  sim::NetworkConfig network;
  sim::ComputeConfig compute;
  /// Fault-injection plan for the worker <-> PS transport. Disabled by
  /// default (bit-identical to a perfect network); when enabled, all
  /// fault decisions are a pure function of `fault.seed` and the
  /// message sequence, so a scenario replays bit-identically.
  sim::FaultConfig fault;
  /// Observability: trace + metrics-export outputs (src/obs/). Disabled
  /// by default; when disabled, engines take zero instrumentation
  /// branches and results are bit-identical to a build without the obs
  /// layer.
  obs::ObsConfig obs;
  uint64_t seed = 1234;

  // -- Crash recovery (DESIGN.md §9) ------------------------------------

  /// Directory receiving periodic HETKGCK2 full-training-state
  /// snapshots plus their MANIFEST. Empty disables checkpointing (and
  /// keeps runs bit-identical to a build without it).
  std::string checkpoint_dir;
  /// Snapshot every N global iterations (0 disables periodic saves).
  size_t checkpoint_every = 0;
  /// Retained manifest entries; older snapshots are pruned (0 = all).
  size_t keep_checkpoints = 3;
  /// Resume source: a snapshot file, or a checkpoint directory whose
  /// manifest picks the newest valid snapshot (falling back to older
  /// entries on corruption). Empty starts fresh.
  std::string resume_from;
  /// Testing hook simulating a hard crash: Train() returns after this
  /// many global iterations without flushing caches or finishing the
  /// epoch (0 = run to completion). The partial report carries whatever
  /// epochs completed.
  size_t halt_after_iterations = 0;
  /// Durable checkpoint writes: fsync the snapshot/manifest temp file
  /// before the rename and the directory after it, so a committed
  /// checkpoint survives a host power loss (not just a process crash).
  /// On by default; --checkpoint_fsync=false trades that guarantee for
  /// faster saves in tests and benchmarks.
  bool checkpoint_fsync = true;

  /// Tiered embedding storage (DESIGN.md §16, --storage=tiered): the
  /// global tables and AdaGrad accumulators move behind mmap-backed
  /// cold slabs in `storage.cold_dir`, optionally quantized to
  /// fp16/int8 (`storage.dtype`); the hotness-aware worker caches stay
  /// fp32 in RAM. PS engines only — the PBG engine swaps whole
  /// partitions and gains nothing from row-granular tiering.
  embedding::TieredOptions storage;
};

/// Per-epoch observables. Times are the simulated cluster critical path
/// (what the paper's Time columns and Fig. 7 stacks report); wall time
/// is the real time this process spent and is reported separately.
struct EpochReport {
  size_t epoch = 0;
  double mean_loss = 0.0;
  sim::TimeBreakdown epoch_time;
  double cumulative_seconds = 0.0;
  double wall_seconds = 0.0;
  double cache_hit_ratio = 0.0;
  uint64_t remote_bytes = 0;
  bool has_valid_metrics = false;
  eval::EvalMetrics valid_metrics;
};

/// Outcome of a full training run.
struct TrainReport {
  std::vector<EpochReport> epochs;
  sim::TimeBreakdown total_time;
  double total_wall_seconds = 0.0;
  double overall_hit_ratio = 0.0;
  uint64_t total_remote_bytes = 0;
  MetricRegistry metrics;
  /// Per-epoch (and optionally per-window) metric samples; populated
  /// only when TrainerConfig::obs requested a metrics export.
  obs::MetricsSeries metrics_series;
};

/// Common interface of the three engine families.
class TrainingEngine {
 public:
  virtual ~TrainingEngine() = default;
  virtual std::string_view name() const = 0;

  /// Enables per-epoch validation MRR tracking (Fig. 5 / Fig. 9 curves).
  /// `graph` and `valid` must outlive the engine.
  virtual void EnableValidation(const graph::KnowledgeGraph* graph,
                                std::span<const Triple> valid,
                                const eval::EvalOptions& options) = 0;

  /// Trains `num_epochs` epochs and returns the per-epoch reports.
  virtual Result<TrainReport> Train(size_t num_epochs) = 0;

  /// Read-only view of the trained global embeddings.
  virtual const eval::EmbeddingLookup& Embeddings() const = 0;

  /// Scoring model in use (for evaluation).
  virtual const embedding::ScoreFunction& ScoreFn() const = 0;

  /// Writes the engine's complete training state to `path` as a
  /// HETKGCK2 snapshot (DESIGN.md §9). Engines that do not implement
  /// crash recovery return Unimplemented.
  virtual Status SaveTrainState(const std::string& path) const {
    (void)path;
    return Status::Unimplemented(std::string(name()) +
                                 " does not support training snapshots");
  }

  /// Restores the state written by SaveTrainState. `path_or_dir` is a
  /// snapshot file or a checkpoint directory (newest valid manifest
  /// entry wins; corrupt entries fall back to older ones). Must be
  /// called before Train(); the next Train() continues mid-run.
  virtual Status RestoreTrainState(const std::string& path_or_dir) {
    (void)path_or_dir;
    return Status::Unimplemented(std::string(name()) +
                                 " does not support training snapshots");
  }

  /// Process-local restore/fallback/orphan-sweep counters. These stay
  /// outside TrainReport::metrics because a resumed run restores once
  /// while the uninterrupted reference run never does — folding them in
  /// would break the bit-identity contract the snapshots exist to keep.
  virtual const MetricRegistry& RecoveryMetrics() const {
    static const MetricRegistry kEmpty;
    return kEmpty;
  }
};

/// Snapshots an engine's trained global embeddings to `path` (see
/// embedding/checkpoint.h for the format). A saved checkpoint can be
/// reloaded with embedding::LoadCheckpoint and evaluated through
/// CheckpointLookup without re-training.
Status SaveEngineCheckpoint(const TrainingEngine& engine,
                            const std::string& path);

/// EmbeddingLookup over a loaded checkpoint (the checkpoint must
/// outlive the lookup).
class CheckpointLookup : public eval::EmbeddingLookup {
 public:
  explicit CheckpointLookup(const embedding::Checkpoint* checkpoint)
      : checkpoint_(checkpoint) {}
  std::span<const float> Entity(EntityId id) const override {
    return checkpoint_->entities.Row(id);
  }
  std::span<const float> Relation(RelationId id) const override {
    return checkpoint_->relations.Row(id);
  }
  size_t num_entities() const override {
    return checkpoint_->entities.num_rows();
  }
  size_t num_relations() const override {
    return checkpoint_->relations.num_rows();
  }

 private:
  const embedding::Checkpoint* checkpoint_;
};

/// Builds the engine for `system`, wiring the sync strategy implied by
/// the system kind (CPS/DPS/no-cache) into `config.sync.strategy`.
/// `graph` supplies entity/relation counts and the partitioning
/// structure; `train` is the triple list to train on. Both must outlive
/// the engine.
Result<std::unique_ptr<TrainingEngine>> MakeEngine(
    SystemKind system, const TrainerConfig& config,
    const graph::KnowledgeGraph& graph, const std::vector<Triple>& train);

}  // namespace hetkg::core

#endif  // HETKG_CORE_TRAINER_H_
