#include "core/trainer.h"

#include "core/pbg_engine.h"
#include "core/ps_engine.h"

namespace hetkg::core {

Status SaveEngineCheckpoint(const TrainingEngine& engine,
                            const std::string& path) {
  const eval::EmbeddingLookup& lookup = engine.Embeddings();
  const size_t entity_dim = lookup.Entity(0).size();
  const size_t relation_dim = lookup.Relation(0).size();
  embedding::EmbeddingTable entities(lookup.num_entities(), entity_dim);
  embedding::EmbeddingTable relations(lookup.num_relations(), relation_dim);
  for (size_t e = 0; e < lookup.num_entities(); ++e) {
    entities.SetRow(e, lookup.Entity(static_cast<EntityId>(e)));
  }
  for (size_t r = 0; r < lookup.num_relations(); ++r) {
    relations.SetRow(r, lookup.Relation(static_cast<RelationId>(r)));
  }
  return embedding::SaveCheckpoint(path, entities, relations);
}

Result<std::unique_ptr<TrainingEngine>> MakeEngine(
    SystemKind system, const TrainerConfig& config,
    const graph::KnowledgeGraph& graph, const std::vector<Triple>& train) {
  TrainerConfig effective = config;
  switch (system) {
    case SystemKind::kHetKgCps:
      effective.sync.strategy = CacheStrategy::kCps;
      break;
    case SystemKind::kHetKgDps:
      effective.sync.strategy = CacheStrategy::kDps;
      break;
    case SystemKind::kDglKe:
      effective.sync.strategy = CacheStrategy::kNone;
      break;
    case SystemKind::kPbg: {
      if (effective.storage.enabled) {
        return Status::InvalidArgument(
            "tiered storage requires a parameter-server engine; PBG "
            "partitions swap whole buckets and gain nothing from "
            "row-granular tiering");
      }
      HETKG_ASSIGN_OR_RETURN(std::unique_ptr<PbgEngine> engine,
                             PbgEngine::Create(effective, graph, train));
      return std::unique_ptr<TrainingEngine>(std::move(engine));
    }
  }
  HETKG_ASSIGN_OR_RETURN(std::unique_ptr<PsTrainingEngine> engine,
                         PsTrainingEngine::Create(effective, graph, train));
  return std::unique_ptr<TrainingEngine>(std::move(engine));
}

}  // namespace hetkg::core
