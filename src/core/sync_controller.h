#ifndef HETKG_CORE_SYNC_CONTROLLER_H_
#define HETKG_CORE_SYNC_CONTROLLER_H_

#include <cstddef>

#include "common/status.h"

namespace hetkg::core {

/// Cache construction strategies (Sec. IV-B).
enum class CacheStrategy {
  kNone,  // No worker cache: plain PS training (the DGL-KE baseline).
  kCps,   // Constant partial stale: hot set fixed from a whole-epoch
          // prefetch before training.
  kDps,   // Dynamic partial stale: hot set rebuilt from the next D
          // iterations' prefetch, every D iterations.
};

/// How cached values are refreshed against the staleness bound.
enum class RefreshMode {
  /// Algorithm 3 lines 8-9: every P iterations the ENTIRE hot table is
  /// re-pulled — the paper's coarse-grained protocol, chosen over HET's
  /// per-embedding clocks for simplicity.
  kFullTable,
  /// Fine-grained per-row staleness in the spirit of HET's embedding
  /// clocks: a cached row is refreshed on access when its last refresh
  /// is more than P iterations old. Rows that are cached but unread
  /// generate no refresh traffic; every row actually READ is still at
  /// most P iterations stale, so the convergence bound is preserved.
  kOnAccess,
};

/// Timing of the hot-embedding synchronization protocol (Algorithms 3-4).
struct SyncConfig {
  CacheStrategy strategy = CacheStrategy::kCps;
  /// P: cached values are re-pulled from the PS every P iterations,
  /// bounding staleness by P (Sec. IV-C).
  size_t staleness_bound = 8;
  /// D: the DPS prefetch/rebuild window, in iterations.
  size_t dps_window = 64;
  RefreshMode refresh_mode = RefreshMode::kFullTable;
  /// Write-back extension (beyond the paper): gradients for CACHED rows
  /// are accumulated locally and pushed to the PS every
  /// `write_back_period` iterations instead of every iteration. 1 =
  /// the paper's write-through behaviour. Larger values cut push
  /// traffic symmetrically to how the cache cuts pull traffic, at the
  /// cost of the server lagging a worker's hot updates by up to this
  /// many iterations. Pending gradients are always flushed before a
  /// refresh or hot-set rebuild so no update is ever lost.
  size_t write_back_period = 1;
  /// Asynchronous pipeline mode (DESIGN.md §12): the engine's
  /// sample/pull/compute/push stages run on their own threads and
  /// iterations overlap, HET-style. Off = deterministic mode, where the
  /// stages rendezvous once per iteration and results are bit-identical
  /// to the serial engine.
  bool async_pipeline = false;
  /// N: in async mode, the pull of iteration i may proceed once
  /// iteration i - N has fully pushed, so every value an iteration
  /// reads lags the global tables by at most N iterations (on top of
  /// the cache's own staleness bound P). 0 = rendezvous per iteration.
  size_t pipeline_staleness = 2;
};

/// Pure schedule logic of Algorithm 3's worker loop, factored out so the
/// trigger arithmetic is testable in isolation. Iterations are counted
/// from 0; construction happens before iteration 0 for every strategy.
class SyncController {
 public:
  static Result<SyncController> Create(const SyncConfig& config);

  const SyncConfig& config() const { return config_; }

  /// True when the cached values must be refreshed from the PS before
  /// running `iteration` (every P iterations, skipping iteration 0
  /// where the cache was just filled).
  bool ShouldRefresh(size_t iteration) const {
    if (config_.strategy == CacheStrategy::kNone) return false;
    return iteration != 0 && iteration % config_.staleness_bound == 0;
  }

  /// True when DPS must prefetch the next window and rebuild the hot
  /// set before running `iteration`.
  bool ShouldRebuild(size_t iteration) const {
    if (config_.strategy != CacheStrategy::kDps) return false;
    return iteration != 0 && iteration % config_.dps_window == 0;
  }

  /// Worst-case number of iterations a cached value may lag the global
  /// value — the staleness bound the convergence analysis relies on.
  size_t MaxStaleness() const {
    return config_.strategy == CacheStrategy::kNone
               ? 0
               : config_.staleness_bound;
  }

  /// Staleness bound that still holds when the fault-injection
  /// transport lost `missed_refreshes` consecutive refresh rounds for a
  /// row: each lost round stretches the row's lag by one more P window
  /// (the worker keeps serving the stale copy until the next refresh
  /// attempt succeeds), so degradation is graceful — linear in the
  /// number of lost refreshes, never unbounded while retries eventually
  /// succeed. See DESIGN.md "Fault model".
  size_t DegradedMaxStaleness(size_t missed_refreshes) const {
    if (config_.strategy == CacheStrategy::kNone) return 0;
    return (missed_refreshes + 1) * config_.staleness_bound;
  }

  /// Asynchronous pipeline mode on?
  bool AsyncPipeline() const { return config_.async_pipeline; }

  /// N: the pipeline run-ahead bound (0 in deterministic mode, where
  /// the stages rendezvous every iteration).
  size_t PipelineStaleness() const {
    return config_.async_pipeline ? config_.pipeline_staleness : 0;
  }

  /// True when iteration `iter` may pull given `completed` fully pushed
  /// iterations — the admission predicate the pull stage blocks on.
  bool PullAdmissible(size_t iter, size_t completed) const {
    return iter <= completed + PipelineStaleness();
  }

  /// Worst-case lag of any value an iteration reads: the cache bound P
  /// plus the pipeline run-ahead N (uncached rows see only N).
  size_t TotalMaxStaleness() const {
    return MaxStaleness() + PipelineStaleness();
  }

 private:
  explicit SyncController(const SyncConfig& config) : config_(config) {}
  SyncConfig config_;
};

}  // namespace hetkg::core

#endif  // HETKG_CORE_SYNC_CONTROLLER_H_
