#ifndef HETKG_CORE_CHECKPOINT_MANAGER_H_
#define HETKG_CORE_CHECKPOINT_MANAGER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace hetkg::core {

/// One line of a checkpoint directory's MANIFEST.
struct ManifestEntry {
  uint64_t iteration = 0;
  std::string file;  // Relative to the checkpoint directory.
};

/// Rotation/retention bookkeeping of a checkpoint directory
/// (DESIGN.md §9):
///
///   <dir>/ck-000000000128.hetkg     HETKGCK2 snapshots, one per save
///   <dir>/MANIFEST                  "<iteration> <file>\n", oldest first
///
/// Snapshots and the manifest are both written atomically (temp +
/// rename), and the manifest is updated only after its snapshot is
/// durable, so the manifest never names a half-written file. Retention
/// keeps the newest `keep` entries and deletes the rest. A crash
/// between a snapshot's temp write and its rename leaves an orphaned
/// "*.tmp" behind; Prepare() sweeps those at startup.
class CheckpointManager {
 public:
  /// `keep` == 0 means keep every snapshot. `fsync` (the default)
  /// makes every manifest commit power-loss durable: the manifest temp
  /// file is fsync()ed before its rename and the directory after
  /// (common/fs_sync.h); callers writing snapshots pass the same flag
  /// to CheckpointWriter::WriteAtomic so the MANIFEST can never
  /// reference a snapshot whose bytes were not yet on stable storage.
  CheckpointManager(std::string dir, size_t keep, bool fsync = true);

  /// Creates the directory (like mkdir -p) and removes orphaned "*.tmp"
  /// files left by a crashed writer. Returns the number of orphans
  /// removed.
  Result<size_t> Prepare();

  /// Path of the snapshot file for `iteration` (zero-padded so lexical
  /// and numeric order agree).
  std::string SnapshotPath(uint64_t iteration) const;

  /// Registers a durably written SnapshotPath(iteration) in the
  /// manifest and prunes entries beyond the retention limit.
  Status Commit(uint64_t iteration);

  /// Manifest entries, oldest first. Missing manifest = empty list.
  Result<std::vector<ManifestEntry>> ReadManifest() const;

  const std::string& dir() const { return dir_; }
  size_t keep() const { return keep_; }
  bool fsync_enabled() const { return fsync_; }

  /// Resolves a --resume_from argument into snapshot paths to try,
  /// newest first: a snapshot file resolves to itself; a checkpoint
  /// directory resolves to its manifest entries newest->oldest (so a
  /// corrupt latest snapshot falls back to the previous one).
  static Result<std::vector<std::string>> ResumeCandidates(
      const std::string& resume_from);

 private:
  Status WriteManifest(const std::vector<ManifestEntry>& entries) const;

  std::string dir_;
  size_t keep_;
  bool fsync_;
};

}  // namespace hetkg::core

#endif  // HETKG_CORE_CHECKPOINT_MANAGER_H_
