#include "eval/link_prediction.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "obs/trace.h"

namespace hetkg::eval {

namespace {

/// Accumulates rank statistics; mergeable across threads.
struct RankAccumulator {
  double mrr = 0.0;
  double mr = 0.0;
  uint64_t h1 = 0;
  uint64_t h3 = 0;
  uint64_t h10 = 0;
  uint64_t count = 0;

  void Add(uint64_t rank) {
    mrr += 1.0 / static_cast<double>(rank);
    mr += static_cast<double>(rank);
    if (rank <= 1) ++h1;
    if (rank <= 3) ++h3;
    if (rank <= 10) ++h10;
    ++count;
  }
  void Merge(const RankAccumulator& other) {
    mrr += other.mrr;
    mr += other.mr;
    h1 += other.h1;
    h3 += other.h3;
    h10 += other.h10;
    count += other.count;
  }
};

/// Candidate triples are scored in blocks of this size through the
/// batched kernel API; tail corruptions share the positive's (h, r)
/// rows, so the kernel reuses one hoisted query intermediate per block.
constexpr size_t kCandidateBlock = 128;

/// Reusable per-chunk block-scoring scratch.
struct BlockScorer {
  std::vector<embedding::TripleView> views;
  std::vector<double> scores;
  embedding::kernels::KernelScratch scratch;
};

/// Ranks one corruption side of one triple. Rank = 1 + number of valid
/// candidates scoring strictly higher than the positive (optimistic on
/// exact ties, the convention of DGL-KE). Candidate scores come from
/// ScoreBatch, which is bit-identical to per-candidate Score calls.
uint64_t RankOneSide(const EmbeddingLookup& embeddings,
                     const embedding::ScoreFunction& fn,
                     const graph::KnowledgeGraph& graph, const Triple& triple,
                     bool corrupt_head, std::span<const EntityId> candidates,
                     bool filtered, BlockScorer* block) {
  const auto h = embeddings.Entity(triple.head);
  const auto r = embeddings.Relation(triple.relation);
  const auto t = embeddings.Entity(triple.tail);
  const double positive_score = fn.Score(h, r, t);
  const embedding::TripleView ref{h, r, t};

  uint64_t rank = 1;
  block->views.clear();
  auto flush = [&] {
    if (block->views.empty()) return;
    block->scores.resize(block->views.size());
    fn.ScoreBatch(ref, block->views, block->scores, &block->scratch);
    for (const double s : block->scores) {
      if (s > positive_score) ++rank;
    }
    block->views.clear();
  };
  for (EntityId cand : candidates) {
    if (corrupt_head) {
      if (cand == triple.head) continue;
      if (filtered &&
          graph.ContainsTriple({cand, triple.relation, triple.tail})) {
        continue;
      }
      block->views.push_back({embeddings.Entity(cand), r, t});
    } else {
      if (cand == triple.tail) continue;
      if (filtered &&
          graph.ContainsTriple({triple.head, triple.relation, cand})) {
        continue;
      }
      block->views.push_back({h, r, embeddings.Entity(cand)});
    }
    if (block->views.size() == kCandidateBlock) flush();
  }
  flush();
  return rank;
}

}  // namespace

Result<EvalMetrics> EvaluateLinkPrediction(
    const EmbeddingLookup& embeddings,
    const embedding::ScoreFunction& score_fn,
    const graph::KnowledgeGraph& graph, std::span<const Triple> test,
    const EvalOptions& options) {
  if (test.empty()) {
    return Status::InvalidArgument("empty test set");
  }
  obs::TraceSpan span("eval.link_prediction", "eval");
  span.Arg("triples", static_cast<double>(test.size()));
  if (options.filtered) {
    graph.BuildTripleSet();  // Built once, then shared read-only.
  }

  Rng rng(options.seed);

  // Triple subset.
  std::vector<Triple> triples(test.begin(), test.end());
  if (options.max_triples != 0 && triples.size() > options.max_triples) {
    rng.Shuffle(&triples);
    triples.resize(options.max_triples);
  }

  // Candidate set: all entities or a fixed uniform sample shared by all
  // triples (cheaper and unbiased for comparison purposes).
  std::vector<EntityId> candidates;
  if (options.num_candidates == 0 ||
      options.num_candidates >= embeddings.num_entities()) {
    candidates.resize(embeddings.num_entities());
    for (size_t e = 0; e < candidates.size(); ++e) {
      candidates[e] = static_cast<EntityId>(e);
    }
  } else {
    candidates.reserve(options.num_candidates);
    for (size_t i = 0; i < options.num_candidates; ++i) {
      candidates.push_back(
          static_cast<EntityId>(rng.NextBounded(embeddings.num_entities())));
    }
  }

  // Fixed-size chunks with an ordered merge: the accumulation order of
  // the rank statistics depends only on the triple count, never on the
  // thread count, so the metrics are bit-identical between the serial
  // path and any pool size.
  constexpr size_t kTriplesPerChunk = 16;
  const size_t chunk_count =
      (triples.size() + kTriplesPerChunk - 1) / kTriplesPerChunk;
  std::vector<RankAccumulator> partials(chunk_count);
  auto rank_chunks = [&](size_t chunk_begin, size_t chunk_end) {
    BlockScorer block;  // Private to this worker invocation.
    for (size_t c = chunk_begin; c < chunk_end; ++c) {
      RankAccumulator& acc = partials[c];
      const size_t begin = c * kTriplesPerChunk;
      const size_t end = std::min(triples.size(), begin + kTriplesPerChunk);
      for (size_t i = begin; i < end; ++i) {
        acc.Add(RankOneSide(embeddings, score_fn, graph, triples[i], true,
                            candidates, options.filtered, &block));
        acc.Add(RankOneSide(embeddings, score_fn, graph, triples[i], false,
                            candidates, options.filtered, &block));
      }
    }
  };

  ThreadPool* pool = options.pool;
  std::unique_ptr<ThreadPool> owned_pool;
  if (pool == nullptr && options.num_threads > 1) {
    owned_pool = std::make_unique<ThreadPool>(options.num_threads);
    pool = owned_pool.get();
  }
  if (pool != nullptr && pool->num_threads() > 1 && chunk_count > 1) {
    pool->ParallelFor(chunk_count, rank_chunks);
  } else {
    rank_chunks(0, chunk_count);
  }

  RankAccumulator total;
  for (const RankAccumulator& acc : partials) {
    total.Merge(acc);
  }

  EvalMetrics metrics;
  metrics.rankings = total.count;
  const double n = static_cast<double>(total.count);
  metrics.mrr = total.mrr / n;
  metrics.mr = total.mr / n;
  metrics.hits1 = static_cast<double>(total.h1) / n;
  metrics.hits3 = static_cast<double>(total.h3) / n;
  metrics.hits10 = static_cast<double>(total.h10) / n;
  return metrics;
}

Result<HotColdEvalMetrics> EvaluateByRelationHotness(
    const EmbeddingLookup& embeddings,
    const embedding::ScoreFunction& score_fn,
    const graph::KnowledgeGraph& graph, std::span<const Triple> test,
    const std::vector<uint32_t>& relation_frequencies,
    const EvalOptions& options) {
  if (test.empty()) {
    return Status::InvalidArgument("empty test set");
  }
  // Median frequency over the relations that actually occur.
  std::vector<uint32_t> nonzero;
  nonzero.reserve(relation_frequencies.size());
  for (uint32_t f : relation_frequencies) {
    if (f > 0) nonzero.push_back(f);
  }
  if (nonzero.empty()) {
    return Status::InvalidArgument("no relation occurs in the graph");
  }
  std::nth_element(nonzero.begin(), nonzero.begin() + nonzero.size() / 2,
                   nonzero.end());
  const uint32_t threshold = nonzero[nonzero.size() / 2];

  std::vector<Triple> hot;
  std::vector<Triple> cold;
  for (const Triple& t : test) {
    if (t.relation < relation_frequencies.size() &&
        relation_frequencies[t.relation] >= threshold) {
      hot.push_back(t);
    } else {
      cold.push_back(t);
    }
  }

  HotColdEvalMetrics out;
  out.frequency_threshold = threshold;
  if (!hot.empty()) {
    HETKG_ASSIGN_OR_RETURN(
        out.hot,
        EvaluateLinkPrediction(embeddings, score_fn, graph, hot, options));
  }
  if (!cold.empty()) {
    HETKG_ASSIGN_OR_RETURN(
        out.cold,
        EvaluateLinkPrediction(embeddings, score_fn, graph, cold, options));
  }
  return out;
}

}  // namespace hetkg::eval
