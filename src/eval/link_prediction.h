#ifndef HETKG_EVAL_LINK_PREDICTION_H_
#define HETKG_EVAL_LINK_PREDICTION_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "embedding/score_function.h"
#include "graph/knowledge_graph.h"

namespace hetkg {
class ThreadPool;
}  // namespace hetkg

namespace hetkg::eval {

/// Read-only view over trained embeddings, decoupling the evaluator
/// from where the rows live (parameter server, checkpoint, ...).
class EmbeddingLookup {
 public:
  virtual ~EmbeddingLookup() = default;
  virtual std::span<const float> Entity(EntityId id) const = 0;
  virtual std::span<const float> Relation(RelationId id) const = 0;
  virtual size_t num_entities() const = 0;
  virtual size_t num_relations() const = 0;
};

/// Standard link-prediction quality metrics (Sec. VI-A): for each test
/// triple, the positive is ranked against corrupted candidates by score;
/// both head and tail corruption count as one ranking each.
struct EvalMetrics {
  double mrr = 0.0;
  double mr = 0.0;
  double hits1 = 0.0;
  double hits3 = 0.0;
  double hits10 = 0.0;
  uint64_t rankings = 0;  // 2 per evaluated triple.
};

struct EvalOptions {
  /// 0 ranks against every entity; otherwise against a uniform sample of
  /// this many candidates (the standard down-sampling for large graphs —
  /// the paper's Freebase-86m runs use neg_sample_eval=1000).
  size_t num_candidates = 0;
  /// Filtered metrics skip candidates that form a known true triple
  /// (the "FilteredMRR" of the paper's Table II hyperparameters).
  bool filtered = true;
  /// Cap on evaluated test triples (0 = all); sampled deterministically.
  size_t max_triples = 0;
  uint64_t seed = 99;
  /// Worker threads for the scoring loop (read-only work). The ranking
  /// statistics accumulate in fixed chunk order, so the metrics are
  /// bit-identical at any thread count.
  size_t num_threads = 1;
  /// Optional externally owned pool to run the scoring loop on (the
  /// training engines lend theirs to the per-epoch validation pass).
  /// When null and num_threads > 1, a temporary pool is spawned.
  ThreadPool* pool = nullptr;
};

/// Computes ranking metrics for `test` triples. `graph` provides the
/// membership oracle for filtered ranking and the entity count.
Result<EvalMetrics> EvaluateLinkPrediction(
    const EmbeddingLookup& embeddings,
    const embedding::ScoreFunction& score_fn,
    const graph::KnowledgeGraph& graph, std::span<const Triple> test,
    const EvalOptions& options);

/// Metrics split by relation hotness: triples whose relation carries at
/// least the median training frequency versus the rest. HET-KG's cache
/// keeps hot relations stale between refreshes, so this breakdown shows
/// whether staleness harms exactly the predictions it touches.
struct HotColdEvalMetrics {
  EvalMetrics hot;
  EvalMetrics cold;
  uint32_t frequency_threshold = 0;  // Median relation frequency used.
};
Result<HotColdEvalMetrics> EvaluateByRelationHotness(
    const EmbeddingLookup& embeddings,
    const embedding::ScoreFunction& score_fn,
    const graph::KnowledgeGraph& graph, std::span<const Triple> test,
    const std::vector<uint32_t>& relation_frequencies,
    const EvalOptions& options);

}  // namespace hetkg::eval

#endif  // HETKG_EVAL_LINK_PREDICTION_H_
