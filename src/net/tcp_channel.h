#ifndef HETKG_NET_TCP_CHANNEL_H_
#define HETKG_NET_TCP_CHANNEL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "net/channel.h"

namespace hetkg::net {

/// Channel over a connected TCP socket with [u32 length][payload]
/// framing — the cross-machine transport (DESIGN.md §13). Recv
/// timeouts use poll(); Close() shuts the socket down from either
/// direction, waking a blocked peer-thread Recv without racing fd
/// reuse (the descriptor itself closes in the destructor).
class TcpChannel final : public Channel {
 public:
  /// Takes ownership of a connected socket fd.
  explicit TcpChannel(int fd);
  ~TcpChannel() override;

  bool Send(std::string_view frame) override;
  RecvStatus Recv(std::string* frame, int timeout_ms) override;
  void Close() override;

 private:
  int fd_;
  /// Atomic because Close() is called from a different thread than the
  /// one blocked in Recv (the Channel contract makes Close thread-safe).
  std::atomic<bool> closed_{false};
};

/// Listening socket. `port == 0` binds an ephemeral port (the fork
/// launcher listens before forking and passes `port()` to children).
class TcpListener {
 public:
  static Result<std::unique_ptr<TcpListener>> Create(uint16_t port);
  ~TcpListener();

  uint16_t port() const { return port_; }

  /// Accepts one connection; kTimeout surfaces as NotFound.
  Result<std::unique_ptr<TcpChannel>> Accept(int timeout_ms);

 private:
  TcpListener(int fd, uint16_t port) : fd_(fd), port_(port) {}
  int fd_;
  uint16_t port_;
};

/// Connects to host:port, retrying under the policy (exponential
/// backoff between attempts) — workers race the coordinator's listen()
/// at launch, and cross-machine links reuse the PR-2 fault-policy
/// shape for transient refusals.
Result<std::unique_ptr<TcpChannel>> TcpConnect(const std::string& host,
                                               uint16_t port,
                                               const RetryPolicy& retry);

}  // namespace hetkg::net

#endif  // HETKG_NET_TCP_CHANNEL_H_
