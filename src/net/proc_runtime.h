#ifndef HETKG_NET_PROC_RUNTIME_H_
#define HETKG_NET_PROC_RUNTIME_H_

#include <sys/types.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/ps_engine.h"
#include "net/channel.h"
#include "net/tcp_channel.h"

namespace hetkg::net {

enum class TransportKind { kShm, kTcp };

Result<TransportKind> ParseTransportKind(std::string_view name);

/// Real process-fault injection: the worker for `machine` SIGKILLs
/// itself upon receiving the kRunStep command for `iter` — before it
/// issues any RPC of that step, so the coordinator's state stays at
/// the pre-step barrier.
struct ProcKill {
  uint32_t machine = 0;
  uint64_t iter = 0;
};

struct ProcOptions {
  TransportKind transport = TransportKind::kShm;
  /// Per-direction shm ring capacity.
  size_t shm_ring_bytes = 1 << 20;
  /// Connect retry policy (shaped from the run's sim::FaultConfig).
  RetryPolicy retry;
  /// Scheduled worker kills (see ProcKill). Entries are pruned once
  /// triggered so the relaunched fleet does not re-die forever.
  std::vector<ProcKill> kills;
  /// Liveness-poll granularity while waiting on a worker message: each
  /// timeout slice reaps dead children via waitpid(WNOHANG), so a
  /// SIGKILLed worker is detected in ~this many milliseconds.
  int poll_ms = 100;
  /// Hard deadline for one worker message (a hung worker becomes a
  /// worker failure after this long).
  int worker_deadline_ms = 120'000;
};

/// The worker-process side of the PsBackend seam: every shared-state
/// mutation the pipeline stages perform is serialized as an RPC to the
/// coordinator, which applies it to the authoritative server/cluster
/// in the worker's program order. Row-dimension queries resolve
/// locally (pure construction-config functions).
class RemotePsBackend final : public core::PsBackend {
 public:
  RemotePsBackend(Messenger* messenger, const ps::ParameterServer* server)
      : messenger_(messenger), server_(server) {}

  ps::PullResult PullBatch(uint32_t machine, std::span<const EmbKey> keys,
                           std::span<std::span<float>> out) override;
  ps::PushResult PushGradBatch(
      uint32_t machine, std::span<const EmbKey> keys,
      std::span<const std::span<const float>> grads) override;
  void ReadRow(EmbKey key, std::span<float> out) override;
  void RecordCompute(uint32_t machine, uint64_t flops) override;
  void IncrementServerMetric(const std::string& name,
                             uint64_t delta) override;

 private:
  /// An RPC failure means the coordinator is gone; the worker process
  /// has nothing left to do and exits.
  [[noreturn]] void Abort(const char* what);
  void SendOrAbort(const ByteWriter& msg);

  Messenger* messenger_;
  const ps::ParameterServer* server_;
};

/// Command loop of one worker process: executes kRunStep / kEpochEnd /
/// kSyncState / kLoadState against its (fork-inherited or locally
/// constructed) engine until kShutdown. Returns the process exit code.
class ProcWorker {
 public:
  ProcWorker(core::PsTrainingEngine* engine, uint32_t machine,
             Messenger* messenger, std::vector<ProcKill> kills)
      : engine_(engine),
        machine_(machine),
        messenger_(messenger),
        kills_(std::move(kills)) {}

  int Run();

 private:
  core::PsTrainingEngine* engine_;
  const uint32_t machine_;
  Messenger* messenger_;
  std::vector<ProcKill> kills_;
};

/// Coordinator (parent-process) side of the process runtime
/// (DESIGN.md §13). Owns the worker processes and their channels,
/// implements the engine's StepDriver by running each step in the
/// worker's process while servicing its backend RPCs against the
/// authoritative PS/cluster — strictly turn-based, so every mutation
/// lands in exactly the order the sim runtime would produce (the
/// checkpoint bit-identity invariant).
class ProcCoordinator final : public core::PsTrainingEngine::StepDriver {
 public:
  /// Fork-mode launch: forks one worker process per engine machine
  /// over the chosen transport (shm ring pairs created pre-fork; TCP
  /// children connect back to an ephemeral loopback listener). On
  /// return the engine's step driver is installed.
  static Result<std::unique_ptr<ProcCoordinator>> ForkWorkers(
      core::PsTrainingEngine* engine, const ProcOptions& options);

  /// Standalone launch (`--listen`): accepts one TCP connection per
  /// machine from externally started workers (`--connect`), matches
  /// them by their kHello machine id, and ships each its initial
  /// worker state. RestartWorkers is Unimplemented in this mode (the
  /// coordinator cannot relaunch a remote process).
  static Result<std::unique_ptr<ProcCoordinator>> ListenForWorkers(
      core::PsTrainingEngine* engine, uint16_t port,
      const ProcOptions& options);

  ~ProcCoordinator() override;

  /// Orderly shutdown: kShutdown/kBye round-trip, reap children.
  Status Shutdown();

  // StepDriver:
  Result<std::pair<double, uint64_t>> DriveStep(uint32_t machine,
                                                size_t iter) override;
  Status DriveEpochEnd(uint32_t machine) override;
  Status SyncWorkerState(uint32_t machine) override;
  bool WorkerFailed() const override { return worker_failed_; }
  Status RestartWorkers() override;

 private:
  struct WorkerLink {
    pid_t pid = -1;  // -1: standalone remote worker (not our child).
    std::unique_ptr<Channel> channel;
    std::unique_ptr<Messenger> messenger;
    bool alive = false;
  };

  ProcCoordinator(core::PsTrainingEngine* engine, ProcOptions options)
      : engine_(engine), options_(std::move(options)) {}

  /// Forks the whole fleet from the engine's current state (initial
  /// launch and post-restore relaunch share this path).
  Status ForkFleet();
  /// Forks one worker; the child never returns from this call.
  Status ForkWorker(uint32_t machine);
  /// SIGKILL + reap + channel teardown of every child.
  void KillFleet();
  void MarkWorkerFailed(uint32_t machine, uint64_t at_iter);

  /// Receives the worker's message stream, applying backend RPCs in
  /// arrival order, until a message of type `until` arrives (its
  /// fields land in `reader`). Fails (and marks the worker dead) on
  /// channel close, child death, protocol violation, or deadline.
  Status ServiceUntil(uint32_t machine, uint8_t until, std::string* payload,
                      ByteReader* reader, uint64_t at_iter);

  /// Applies one worker→coordinator backend RPC. `handled` is false
  /// for non-backend message types (the caller's terminator).
  Status ApplyBackendRpc(uint32_t machine, uint8_t type, ByteReader* r,
                         bool* handled);

  core::PsTrainingEngine* engine_;
  ProcOptions options_;
  std::vector<WorkerLink> links_;
  std::unique_ptr<TcpListener> listener_;  // TCP fork mode only.
  bool standalone_ = false;
  bool worker_failed_ = false;
  bool shut_down_ = false;
};

/// Entry point of an externally started TCP worker (`--runtime=proc
/// --connect=host:port --worker_id=m`): connects, introduces itself,
/// loads the coordinator-shipped state, and serves until shutdown.
Status RunStandaloneWorker(core::PsTrainingEngine* engine, uint32_t machine,
                           const std::string& host, uint16_t port,
                           const ProcOptions& options);

}  // namespace hetkg::net

#endif  // HETKG_NET_PROC_RUNTIME_H_
