#ifndef HETKG_NET_PROC_RUNTIME_H_
#define HETKG_NET_PROC_RUNTIME_H_

#include <sys/types.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "core/ps_engine.h"
#include "net/channel.h"
#include "net/fault_channel.h"
#include "net/tcp_channel.h"
#include "obs/flight.h"

namespace hetkg::net {

enum class TransportKind { kShm, kTcp };

Result<TransportKind> ParseTransportKind(std::string_view name);

/// Real process-fault injection: the worker for `machine` SIGKILLs
/// itself upon receiving the kRunStep command for `iter` — before it
/// issues any RPC of that step, so the coordinator's state stays at
/// the pre-step barrier. The same schedule shape drives `--proc_stop`
/// SIGSTOP injection (a hung-but-alive worker the watchdog must
/// detect; DESIGN.md §15).
struct ProcKill {
  uint32_t machine = 0;
  uint64_t iter = 0;
};

struct ProcOptions {
  TransportKind transport = TransportKind::kShm;
  /// Per-direction shm ring capacity.
  size_t shm_ring_bytes = 1 << 20;
  /// Connect retry policy (shaped from the run's sim::FaultConfig).
  RetryPolicy retry;
  /// Scheduled worker kills (see ProcKill). Entries are pruned once
  /// triggered so the relaunched fleet does not re-die forever.
  std::vector<ProcKill> kills;
  /// Scheduled worker SIGSTOPs (same schedule shape and pruning as
  /// `kills`): the worker hangs alive at the kRunStep barrier, and
  /// only the heartbeat watchdog can tell it from a slow one.
  std::vector<ProcKill> stops;
  /// Wire-level fault injection (DESIGN.md §15), applied on every
  /// link in both directions; `fault.enabled` also arms the
  /// Messenger's retransmit layer that heals the injected faults.
  WireFaultConfig fault;
  /// Worker liveness-beacon period (heartbeat thread in each worker
  /// process); 0 disables heartbeats.
  int heartbeat_ms = 1000;
  /// Coordinator watchdog: a worker whose link shows no activity (no
  /// RPC, no heartbeat) for this long mid-turn is declared hung and
  /// SIGKILLed into the rewind-and-refork recovery path. 0 disables;
  /// requires heartbeat_ms > 0 to be meaningful.
  int watchdog_ms = 15'000;
  /// Worker-side deadline on each blocking RPC reply (a vanished
  /// coordinator fails the RPC with DeadlineExceeded instead of
  /// hanging the worker forever).
  int rpc_deadline_ms = 120'000;
  /// Liveness-poll granularity while waiting on a worker message: each
  /// timeout slice reaps dead children via waitpid(WNOHANG), so a
  /// SIGKILLed worker is detected in ~this many milliseconds.
  int poll_ms = 100;
  /// Hard deadline for one worker message (a hung worker becomes a
  /// worker failure after this long even with the watchdog off).
  int worker_deadline_ms = 120'000;
  /// Per-worker trace ring capacity when obs tracing is on (events
  /// buffered between kShipObs drains; overflow counts as
  /// trace.dropped_events).
  size_t trace_ring_capacity = 1 << 16;
  /// Crash flight-recorder depth (last-N trace events preserved across
  /// SIGKILL; DESIGN.md §14).
  size_t flight_slots = obs::FlightRecorder::kDefaultSlots;
};

/// The worker-process side of the PsBackend seam: every shared-state
/// mutation the pipeline stages perform is serialized as an RPC to the
/// coordinator, which applies it to the authoritative server/cluster
/// in the worker's program order. Row-dimension queries resolve
/// locally (pure construction-config functions).
class RemotePsBackend final : public core::PsBackend {
 public:
  /// `rpc_deadline_ms` bounds every blocking reply wait; a reply that
  /// never comes aborts the worker (DeadlineExceeded) instead of
  /// hanging it forever.
  RemotePsBackend(Messenger* messenger, const ps::ParameterServer* server,
                  int rpc_deadline_ms = 120'000)
      : messenger_(messenger),
        server_(server),
        rpc_deadline_ms_(rpc_deadline_ms) {}

  ps::PullResult PullBatch(uint32_t machine, std::span<const EmbKey> keys,
                           std::span<std::span<float>> out) override;
  ps::PushResult PushGradBatch(
      uint32_t machine, std::span<const EmbKey> keys,
      std::span<const std::span<const float>> grads) override;
  void ReadRow(EmbKey key, std::span<float> out) override;
  void RecordCompute(uint32_t machine, uint64_t flops) override;
  void IncrementServerMetric(const std::string& name,
                             uint64_t delta) override;

 private:
  /// An RPC failure means the coordinator is gone; the worker process
  /// has nothing left to do and exits.
  [[noreturn]] void Abort(const char* what);
  void SendOrAbort(const ByteWriter& msg);
  /// Blocking reply wait under the per-RPC deadline; aborts the worker
  /// on deadline, corruption, or close.
  void RecvOrAbort(std::string* payload);

  Messenger* messenger_;
  const ps::ParameterServer* server_;
  const int rpc_deadline_ms_;
};

/// Command loop of one worker process: executes kRunStep / kEpochEnd /
/// kSyncState / kLoadState against its (fork-inherited or locally
/// constructed) engine until kShutdown. Returns the process exit code.
class ProcWorker {
 public:
  /// `flight` is the fork-inherited shm flight recorder (shm transport
  /// only; null otherwise — tcp workers create a spill-file recorder on
  /// kStartObs). `fault_stats` is the process's fault/heartbeat
  /// counter sink (shared with its FaultChannel/Messenger; may be
  /// null), folded into the shipped obs registry.
  ProcWorker(core::PsTrainingEngine* engine, uint32_t machine,
             Messenger* messenger, const ProcOptions& options,
             obs::FlightRecorder* flight, NetFaultStats* fault_stats)
      : engine_(engine),
        machine_(machine),
        messenger_(messenger),
        kills_(options.kills),
        stops_(options.stops),
        heartbeat_ms_(options.heartbeat_ms),
        rpc_deadline_ms_(options.rpc_deadline_ms),
        shared_flight_(flight),
        fault_stats_(fault_stats) {}

  int Run();

 private:
  /// kStartObs handler: turns on this process's tracer session,
  /// transport profiling, and flight recorder per the coordinator's
  /// payload.
  void HandleStartObs(ByteReader* r);
  /// Ships the cumulative obs snapshot (trace ring drain + gauges +
  /// never-serialized metric registry) as one kObsData message.
  bool SendObsData(core::PsTrainingEngine::Worker* w);

  core::PsTrainingEngine* engine_;
  const uint32_t machine_;
  Messenger* messenger_;
  std::vector<ProcKill> kills_;
  std::vector<ProcKill> stops_;
  const int heartbeat_ms_;
  const int rpc_deadline_ms_;
  /// Fork-inherited shm flight region (not owned) / tcp spill-file
  /// recorder (owned). At most one is active as the tracer event sink.
  obs::FlightRecorder* shared_flight_ = nullptr;
  std::unique_ptr<obs::FlightRecorder> file_flight_;
  /// Process-local, never serialized: transport profiling + dropped-
  /// event counts shipped to the coordinator, kept out of engine state
  /// so proc snapshots stay byte-identical to sim, obs on or off.
  MetricRegistry net_metrics_;
  /// Fault/heartbeat counter sink (not owned; may be null) plus the
  /// already-folded watermark, so each kObsData shipment adds only the
  /// delta into the cumulative net_metrics_.
  NetFaultStats* fault_stats_ = nullptr;
  NetFaultCounts folded_faults_;
  bool obs_on_ = false;
  bool obs_trace_ = false;
  /// Epoch-cumulative cache counters: the command loop zeroes the
  /// engine's per-epoch hit/miss counters at kEpochEnd, so the shipped
  /// cache.hit_ratio gauge accumulates here first.
  uint64_t cum_hits_ = 0;
  uint64_t cum_misses_ = 0;
  uint64_t last_dropped_ = 0;
};

/// Coordinator (parent-process) side of the process runtime
/// (DESIGN.md §13). Owns the worker processes and their channels,
/// implements the engine's StepDriver by running each step in the
/// worker's process while servicing its backend RPCs against the
/// authoritative PS/cluster — strictly turn-based, so every mutation
/// lands in exactly the order the sim runtime would produce (the
/// checkpoint bit-identity invariant).
class ProcCoordinator final : public core::PsTrainingEngine::StepDriver {
 public:
  /// Fork-mode launch: forks one worker process per engine machine
  /// over the chosen transport (shm ring pairs created pre-fork; TCP
  /// children connect back to an ephemeral loopback listener). On
  /// return the engine's step driver is installed.
  static Result<std::unique_ptr<ProcCoordinator>> ForkWorkers(
      core::PsTrainingEngine* engine, const ProcOptions& options);

  /// Standalone launch (`--listen`): accepts one TCP connection per
  /// machine from externally started workers (`--connect`), matches
  /// them by their kHello machine id, and ships each its initial
  /// worker state. RestartWorkers is Unimplemented in this mode (the
  /// coordinator cannot relaunch a remote process).
  static Result<std::unique_ptr<ProcCoordinator>> ListenForWorkers(
      core::PsTrainingEngine* engine, uint16_t port,
      const ProcOptions& options);

  ~ProcCoordinator() override;

  /// Orderly shutdown: kShutdown/kBye round-trip, reap children.
  Status Shutdown();

  // StepDriver:
  Result<std::pair<double, uint64_t>> DriveStep(uint32_t machine,
                                                size_t iter) override;
  Status DriveEpochEnd(uint32_t machine) override;
  Status SyncWorkerState(uint32_t machine) override;
  bool WorkerFailed() const override { return worker_failed_; }
  Status RestartWorkers() override;
  Status SetupObs() override;
  Status FlushObs() override;
  const MetricRegistry* ObsMetrics() const override;

  /// Always-on transport totals for the launcher's end-of-run net.*
  /// summary (counted even with obs off; never serialized).
  struct TransportTotals {
    uint64_t rpc_round_trips = 0;
    uint64_t frames_sent = 0;
    uint64_t bytes_sent = 0;
    uint64_t frames_received = 0;
    uint64_t bytes_received = 0;
    uint64_t send_stalls = 0;
    /// Coordinator-side fault accounting (injection on its send
    /// direction; detection/healing on its receive direction).
    uint64_t faults_injected = 0;
    uint64_t crc_errors = 0;
    uint64_t retransmits = 0;
    uint64_t heartbeats_received = 0;
    uint64_t watchdog_escalations = 0;
  };
  TransportTotals Totals() const;
  const char* TransportName() const;

  /// One reaped worker termination worth reporting (died by signal, or
  /// exited nonzero, or was escalated to SIGKILL by the coordinator).
  /// Orderly kBye exits are not recorded.
  struct WorkerExit {
    uint32_t machine = 0;
    bool signaled = false;
    /// Signal number when signaled, exit code otherwise.
    int code = 0;
    /// Why the coordinator reaped it ("died mid-turn", "watchdog
    /// escalation", ...).
    std::string context;
  };
  const std::vector<WorkerExit>& WorkerExits() const {
    return worker_exits_;
  }

 private:
  struct WorkerLink {
    pid_t pid = -1;  // -1: standalone remote worker (not our child).
    std::unique_ptr<Channel> channel;
    /// Coordinator-direction fault decorator (installed between
    /// channel and messenger when wire faults are armed).
    std::unique_ptr<FaultChannel> faulty;
    std::unique_ptr<Messenger> messenger;
    bool alive = false;
    /// Worker monotonic clock minus coordinator monotonic clock, from
    /// the kClockSync min-RTT handshake; remote trace timestamps are
    /// rebased by subtracting it.
    int64_t clock_offset_us = 0;
    /// shm transport: the fork-shared flight-recorder region (parent's
    /// mapping; survives the child's SIGKILL). tcp: null — the worker
    /// spills to `flight_path` instead.
    std::unique_ptr<obs::FlightRecorder> flight;
    std::string flight_path;
  };

  ProcCoordinator(core::PsTrainingEngine* engine, ProcOptions options)
      : engine_(engine), options_(std::move(options)) {}

  /// Forks the whole fleet from the engine's current state (initial
  /// launch and post-restore relaunch share this path).
  Status ForkFleet();
  /// Forks one worker; the child never returns from this call.
  Status ForkWorker(uint32_t machine);
  /// Installs the per-link wire stack on `link`: always-on channel
  /// stats, the FaultChannel decorator when wire faults are armed, and
  /// a Messenger (reliable mode armed with the faults) on top.
  void WireLink(WorkerLink& link, uint64_t link_salt);
  /// SIGKILL + reap + channel teardown of every child (deliberate
  /// teardown: exits are not recorded).
  void KillFleet();
  void MarkWorkerFailed(uint32_t machine, uint64_t at_iter,
                        const char* context = "worker failure");
  /// Decodes a waitpid status and records it when abnormal (signaled
  /// or nonzero exit).
  void RecordExit(uint32_t machine, int wait_status, const char* context);

  /// Receives the worker's message stream, applying backend RPCs in
  /// arrival order, until a message of type `until` arrives (its
  /// fields land in `reader`). Fails (and marks the worker dead) on
  /// channel close, child death, protocol violation, or deadline.
  Status ServiceUntil(uint32_t machine, uint8_t until, std::string* payload,
                      ByteReader* reader, uint64_t at_iter);

  /// Applies one worker→coordinator backend RPC. `handled` is false
  /// for non-backend message types (the caller's terminator).
  Status ApplyBackendRpc(uint32_t machine, uint8_t type, ByteReader* r,
                         bool* handled);

  // -- Cross-process observability (DESIGN.md §14) ----------------------

  /// One-time removal of <trace_out>.flight.w* spill files a crashed
  /// previous run left behind (mirrors the stale-checkpoint sweep).
  void SweepOrphanFlightSpills(const std::string& trace_out);
  /// Min-RTT monotonic clock-offset handshake with one worker; stores
  /// the offset in its link.
  Status ClockSync(uint32_t machine);
  /// Segment-barrier shipment: kShipObs round trip + ingest.
  Status ShipObs(uint32_t machine);
  /// Parses one kObsData payload into the merged trace / per-worker
  /// registries. Returns false on a malformed payload.
  bool IngestObsData(uint32_t machine, ByteReader* r);
  /// Post-mortem flight-recorder harvest of a dead worker (shm region
  /// or tcp spill file), injected as a "flight.w<m>" track.
  void HarvestFlight(uint32_t machine);

  /// Harvested flight events, kept so a post-crash retry's fresh trace
  /// session (which overwrites the same trace file) re-injects them.
  struct FlightCapture {
    uint32_t machine = 0;
    int64_t offset_us = 0;
    std::string blob;  // SerializeHarvest wire bytes.
  };
  void InjectFlight(const FlightCapture& capture);

  core::PsTrainingEngine* engine_;
  ProcOptions options_;
  std::vector<WorkerLink> links_;
  std::unique_ptr<TcpListener> listener_;  // TCP fork mode only.
  bool standalone_ = false;
  bool worker_failed_ = false;
  bool shut_down_ = false;

  // Observability state. None of it is ever serialized into training
  // snapshots (the byte-identity invariant); `net_metrics_` holds the
  // coordinator-side transport histograms, `worker_regs_`/
  // `worker_gauges_` the last cumulative shipment of each worker
  // (replaced wholesale per shipment, so re-ships never double-count),
  // and `obs_report_` the merged view ObsMetrics() hands the engine.
  bool obs_on_ = false;
  bool trace_on_ = false;
  MetricRegistry net_metrics_;
  std::vector<MetricRegistry> worker_regs_;
  std::vector<std::vector<std::pair<std::string, double>>> worker_gauges_;
  mutable MetricRegistry obs_report_;
  std::vector<FlightCapture> flights_;
  /// Always-on frame/byte totals shared by every worker channel.
  ChannelStats channel_stats_;
  /// Always-on fault/heartbeat totals shared by every coordinator-side
  /// FaultChannel and Messenger. Folded (absolute) into the ObsMetrics
  /// report; read directly by Totals() with obs off.
  NetFaultStats net_fault_stats_;
  uint64_t rpc_round_trips_ = 0;
  uint64_t watchdog_escalations_ = 0;
  /// Reaped abnormal worker terminations, for the launcher summary.
  std::vector<WorkerExit> worker_exits_;
  /// The orphaned flight-spill sweep runs once per coordinator, before
  /// the first fleet can create fresh spill files.
  bool flight_swept_ = false;
};

/// Entry point of an externally started TCP worker (`--runtime=proc
/// --connect=host:port --worker_id=m`): connects, introduces itself,
/// loads the coordinator-shipped state, and serves until shutdown.
Status RunStandaloneWorker(core::PsTrainingEngine* engine, uint32_t machine,
                           const std::string& host, uint16_t port,
                           const ProcOptions& options);

}  // namespace hetkg::net

#endif  // HETKG_NET_PROC_RUNTIME_H_
