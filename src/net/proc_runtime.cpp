#include "net/proc_runtime.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <thread>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "net/local_channel.h"
#include "net/rpc.h"
#include "net/shm_ring.h"
#include "obs/trace.h"

namespace hetkg::net {

namespace {

/// Handshake / shutdown grace deadline (ms).
constexpr int kHandshakeMs = 30'000;
constexpr int kShutdownGraceMs = 5'000;

uint8_t TypeByte(MsgType t) { return static_cast<uint8_t>(t); }

}  // namespace

Result<TransportKind> ParseTransportKind(std::string_view name) {
  if (name == "shm") return TransportKind::kShm;
  if (name == "tcp") return TransportKind::kTcp;
  return Status::InvalidArgument("unknown proc transport: " +
                                 std::string(name));
}

// ---------------------------------------------------------------------------
// RemotePsBackend (worker-process side of the seam).

void RemotePsBackend::Abort(const char* what) {
  HETKG_LOG(Warning) << "worker RPC channel failed (" << what
                     << "); exiting";
  std::_Exit(2);
}

void RemotePsBackend::SendOrAbort(const ByteWriter& msg) {
  if (!messenger_->Send(msg.buffer())) Abort("send");
}

void RemotePsBackend::RecvOrAbort(std::string* payload) {
  const Status status =
      messenger_->RecvOrDeadline(payload, rpc_deadline_ms_);
  if (!status.ok()) Abort(status.ToString().c_str());
}

ps::PullResult RemotePsBackend::PullBatch(uint32_t machine,
                                          std::span<const EmbKey> keys,
                                          std::span<std::span<float>> out) {
  (void)machine;  // The channel itself identifies the worker.
  ByteWriter msg = RpcMessage(MsgType::kPull);
  msg.U64Vec(keys);
  const bool profile = messenger_->MetricsEnabled();
  Stopwatch sw;
  SendOrAbort(msg);

  std::string payload;
  RecvOrAbort(&payload);
  if (profile) messenger_->ObserveRpcLatency(sw.ElapsedSeconds() * 1e6);
  MsgType type;
  ByteReader r{std::string_view()};
  if (!RpcOpen(payload, &type, &r) || type != MsgType::kPullReply) {
    Abort("expected kPullReply");
  }
  ps::PullResult result;
  const uint64_t n_failed = r.U64();
  std::vector<char> is_failed(keys.size(), 0);
  for (uint64_t i = 0; i < n_failed; ++i) {
    const uint32_t idx = r.U32();
    if (!r.ok() || idx >= keys.size()) Abort("bad kPullReply index");
    result.failed.push_back(idx);
    is_failed[idx] = 1;
  }
  // The reply carries every key's row back-to-back in key order; spans
  // of failed keys keep their previous contents (the stale-serve /
  // degraded-read contract of ParameterServer::PullBatch).
  for (size_t k = 0; k < keys.size(); ++k) {
    const size_t dim = server_->RowDim(keys[k]);
    if (is_failed[k]) {
      std::vector<float> discard(dim);
      if (!r.ReadRaw(discard.data(), dim * sizeof(float))) {
        Abort("short kPullReply");
      }
      continue;
    }
    if (out[k].size() != dim ||
        !r.ReadRaw(out[k].data(), dim * sizeof(float))) {
      Abort("short kPullReply");
    }
  }
  if (!r.ok() || r.remaining() != 0) Abort("trailing kPullReply bytes");
  return result;
}

ps::PushResult RemotePsBackend::PushGradBatch(
    uint32_t machine, std::span<const EmbKey> keys,
    std::span<const std::span<const float>> grads) {
  (void)machine;
  ByteWriter msg = RpcMessage(MsgType::kPush);
  msg.U64Vec(keys);
  for (const std::span<const float>& g : grads) {
    msg.Raw(g.data(), g.size() * sizeof(float));
  }
  // Fire-and-forget: the channel is FIFO and the coordinator applies
  // every queued message before answering the next blocking RPC, so
  // ordering (and hence the push-sequence numbering) is preserved. The
  // engine ignores the result in both runtimes.
  SendOrAbort(msg);
  return ps::PushResult{};
}

void RemotePsBackend::ReadRow(EmbKey key, std::span<float> out) {
  ByteWriter msg = RpcMessage(MsgType::kReadRow);
  msg.U64(key);
  const bool profile = messenger_->MetricsEnabled();
  Stopwatch sw;
  SendOrAbort(msg);
  std::string payload;
  RecvOrAbort(&payload);
  if (profile) messenger_->ObserveRpcLatency(sw.ElapsedSeconds() * 1e6);
  MsgType type;
  ByteReader r{std::string_view()};
  if (!RpcOpen(payload, &type, &r) || type != MsgType::kReadRowReply ||
      !r.ReadRaw(out.data(), out.size() * sizeof(float)) ||
      r.remaining() != 0) {
    Abort("bad kReadRowReply");
  }
}

void RemotePsBackend::RecordCompute(uint32_t machine, uint64_t flops) {
  (void)machine;
  ByteWriter msg = RpcMessage(MsgType::kCharge);
  msg.U64(flops);
  SendOrAbort(msg);
}

void RemotePsBackend::IncrementServerMetric(const std::string& name,
                                            uint64_t delta) {
  ByteWriter msg = RpcMessage(MsgType::kMetric);
  msg.Str(name);
  msg.U64(delta);
  SendOrAbort(msg);
}

// ---------------------------------------------------------------------------
// ProcWorker (worker-process command loop).

void ProcWorker::HandleStartObs(ByteReader* r) {
  const bool trace_on = r->U8() != 0;
  const uint64_t ring_capacity = r->U64();
  const uint8_t flight_kind = r->U8();
  const uint64_t flight_slots = r->U64();
  const std::string flight_path = r->Str();
  const std::string transport = r->Str();
  if (!r->ok() || r->remaining() != 0) return;
  obs_on_ = true;
  obs_trace_ = trace_on;
  // Transport profiling into the process-local, never-serialized
  // registry; shipped to the coordinator with every kObsData.
  messenger_->EnableMetrics(&net_metrics_, transport);
  if (!trace_on) return;
  if (!obs::Tracer::StartShipping(ring_capacity).ok()) {
    obs_trace_ = false;
    return;
  }
  last_dropped_ = 0;
  // Arm the crash flight recorder as the tracer's event mirror: the
  // fork-inherited shm region, or a spill file the coordinator can
  // open post-mortem.
  if (flight_kind == 1 && shared_flight_ != nullptr) {
    obs::Tracer::SetEventSink(shared_flight_);
  } else if (flight_kind == 2 && !flight_path.empty()) {
    Result<std::unique_ptr<obs::FlightRecorder>> created =
        obs::FlightRecorder::CreateFile(flight_path, flight_slots);
    if (created.ok()) {
      file_flight_ = std::move(created.value());
      obs::Tracer::SetEventSink(file_flight_.get());
    }
  }
}

bool ProcWorker::SendObsData(core::PsTrainingEngine::Worker* w) {
  ByteWriter msg = RpcMessage(MsgType::kObsData);
  ByteWriter trace;
  if (obs_trace_) {
    obs::Tracer::DrainShipment(&trace);
    const uint64_t dropped = obs::Tracer::DroppedEvents();
    if (dropped > last_dropped_) {
      net_metrics_.Increment(metric::kTraceDroppedEvents,
                             dropped - last_dropped_);
      last_dropped_ = dropped;
    }
  }
  msg.U64(trace.size());
  msg.Raw(trace.buffer().data(), trace.size());
  // Gauges that only this process can compute (the command loop zeroes
  // the per-epoch counters, so the ratio is over the cum_* mirror).
  const uint64_t hits = cum_hits_ + w->hits;
  const uint64_t misses = cum_misses_ + w->misses;
  uint64_t n_gauges = 0;
  ByteWriter gauges;
  if (hits + misses > 0) {
    gauges.Str(metric::kCacheHitRatio);
    gauges.F64(static_cast<double>(hits) /
               static_cast<double>(hits + misses));
    ++n_gauges;
  }
  msg.U64(n_gauges);
  msg.Raw(gauges.buffer().data(), gauges.size());
  // Fold this process's wire-fault/heartbeat counters (delta since the
  // last shipment) into the cumulative registry; nothing is folded —
  // and no net.fault.* key created — unless a counter moved.
  if (fault_stats_ != nullptr) {
    FoldFaultStats(*fault_stats_, &folded_faults_, &net_metrics_);
  }
  net_metrics_.SaveState(&msg);
  return messenger_->Send(msg.buffer());
}

int ProcWorker::Run() {
  // The worker process never runs Train(), checkpoints, or obs; the
  // coordinator owns all of those. It executes exactly the per-step
  // stage code, with every shared-state call routed over the channel.
  engine_->obs_active_ = false;
  engine_->SetStepDriver(nullptr);
  RemotePsBackend backend(messenger_, engine_->server_.get(),
                          rpc_deadline_ms_);
  engine_->SetPsBackend(&backend);
  core::PsTrainingEngine::Worker* w = &engine_->workers_[machine_];

  // Liveness beacons for the coordinator's watchdog: a dedicated
  // thread so a long compute phase (no RPC traffic) still proves the
  // process is alive. The Messenger serializes the shared send path.
  std::mutex hb_mu;
  std::condition_variable hb_cv;
  bool hb_stop = false;
  std::thread hb_thread;
  if (heartbeat_ms_ > 0) {
    hb_thread = std::thread([this, &hb_mu, &hb_cv, &hb_stop] {
      std::unique_lock<std::mutex> lock(hb_mu);
      while (!hb_cv.wait_for(lock, std::chrono::milliseconds(heartbeat_ms_),
                             [&hb_stop] { return hb_stop; })) {
        lock.unlock();
        messenger_->SendHeartbeat();
        lock.lock();
      }
    });
  }
  const auto stop_heartbeats = [&] {
    if (!hb_thread.joinable()) return;
    {
      std::lock_guard<std::mutex> lock(hb_mu);
      hb_stop = true;
    }
    hb_cv.notify_all();
    hb_thread.join();
  };

  int exit_code = 1;
  for (;;) {
    std::string payload;
    if (messenger_->Recv(&payload, -1) != RecvStatus::kOk) break;
    MsgType type;
    ByteReader r{std::string_view()};
    if (!RpcOpen(payload, &type, &r)) break;
    if (type == MsgType::kRunStep) {
      const uint64_t iter = r.U64();
      if (!r.ok()) break;
      for (const ProcKill& kill : kills_) {
        if (kill.machine == machine_ && kill.iter == iter) {
          // Real fault injection: die exactly like a crashed worker,
          // BEFORE any RPC of this step, so the coordinator's state
          // sits at the pre-step barrier when it notices.
          raise(SIGKILL);
        }
      }
      for (const ProcKill& stop : stops_) {
        if (stop.machine == machine_ && stop.iter == iter) {
          // Hung-worker injection: freeze alive at the same pre-step
          // barrier (heartbeat thread frozen too — SIGSTOP stops every
          // thread), so only the coordinator's liveness watchdog can
          // tell this from a healthy slow worker. Never resumed: the
          // watchdog's SIGKILL escalation is the only exit.
          raise(SIGSTOP);
        }
      }
      const auto [loss, pairs] = engine_->Step(w, iter);
      ByteWriter done = RpcMessage(MsgType::kStepDone);
      done.F64(loss);
      done.U64(pairs);
      if (!messenger_->Send(done.buffer())) break;
    } else if (type == MsgType::kEpochEnd) {
      engine_->FlushPendingGradients(w);
      ByteWriter done = RpcMessage(MsgType::kEpochDone);
      done.U64(w->hits);
      done.U64(w->misses);
      // The engine's epoch harvest zeroes the per-epoch counters; the
      // worker mirrors that so next epoch's ratio starts fresh. The
      // obs cache.hit_ratio gauge is run-cumulative, so fold the epoch
      // into the cum_* mirror first.
      cum_hits_ += w->hits;
      cum_misses_ += w->misses;
      w->hits = 0;
      w->misses = 0;
      if (!messenger_->Send(done.buffer())) break;
    } else if (type == MsgType::kSyncState) {
      ByteWriter blob;
      engine_->SaveWorkerState(*w, &blob);
      ByteWriter msg = RpcMessage(MsgType::kWorkerState);
      msg.Raw(blob.buffer().data(), blob.size());
      if (!messenger_->Send(msg.buffer())) break;
    } else if (type == MsgType::kLoadState) {
      const uint32_t m = r.U32();
      if (!r.ok() || m != machine_ ||
          !engine_->LoadWorkerState(w, &r) || r.remaining() != 0) {
        break;
      }
    } else if (type == MsgType::kStartObs) {
      HandleStartObs(&r);
    } else if (type == MsgType::kClockSync) {
      ByteWriter reply = RpcMessage(MsgType::kClockSyncReply);
      reply.U64(obs::Tracer::NowMicros());
      if (!messenger_->Send(reply.buffer())) break;
    } else if (type == MsgType::kShipObs) {
      if (!SendObsData(w)) break;
    } else if (type == MsgType::kShutdown) {
      // Final unsolicited shipment so the coordinator's kBye drain
      // gets everything traced since the last barrier.
      if (obs_on_) (void)SendObsData(w);
      messenger_->Send(RpcMessage(MsgType::kBye).buffer());
      exit_code = 0;
      break;
    } else {
      break;  // Protocol violation.
    }
  }
  stop_heartbeats();
  if (obs_trace_) {
    obs::Tracer::SetEventSink(nullptr);
    (void)obs::Tracer::Stop();  // Ship-only session: discards.
  }
  engine_->SetPsBackend(nullptr);
  return exit_code;
}

// ---------------------------------------------------------------------------
// ProcCoordinator.

Result<std::unique_ptr<ProcCoordinator>> ProcCoordinator::ForkWorkers(
    core::PsTrainingEngine* engine, const ProcOptions& options) {
  std::unique_ptr<ProcCoordinator> coord(
      new ProcCoordinator(engine, options));
  coord->links_.resize(engine->workers_.size());
  if (options.transport == TransportKind::kTcp) {
    HETKG_ASSIGN_OR_RETURN(coord->listener_, TcpListener::Create(0));
  }
  HETKG_RETURN_IF_ERROR(coord->ForkFleet());
  engine->SetStepDriver(coord.get());
  return coord;
}

Result<std::unique_ptr<ProcCoordinator>> ProcCoordinator::ListenForWorkers(
    core::PsTrainingEngine* engine, uint16_t port,
    const ProcOptions& options) {
  std::unique_ptr<ProcCoordinator> coord(
      new ProcCoordinator(engine, options));
  coord->standalone_ = true;
  coord->options_.transport = TransportKind::kTcp;  // For TransportName().
  coord->links_.resize(engine->workers_.size());
  HETKG_ASSIGN_OR_RETURN(std::unique_ptr<TcpListener> listener,
                         TcpListener::Create(port));
  HETKG_LOG(Info) << "coordinator listening on port " << listener->port()
                  << " for " << coord->links_.size() << " workers";
  for (size_t i = 0; i < coord->links_.size(); ++i) {
    HETKG_ASSIGN_OR_RETURN(std::unique_ptr<TcpChannel> channel,
                           listener->Accept(kHandshakeMs));
    // The machine id is only known after the hello, so the accept-order
    // index salts this link's fault plan instead.
    WorkerLink probe;
    probe.channel = std::move(channel);
    coord->WireLink(probe, /*link_salt=*/2000 + 2 * i);
    std::string payload;
    if (probe.messenger->Recv(&payload, kHandshakeMs) != RecvStatus::kOk) {
      return Status::IoError("worker hello timed out");
    }
    MsgType type;
    ByteReader r{std::string_view()};
    if (!RpcOpen(payload, &type, &r) || type != MsgType::kHello) {
      return Status::Corruption("expected kHello");
    }
    const uint32_t machine = r.U32();
    if (!r.ok() || machine >= coord->links_.size() ||
        coord->links_[machine].alive) {
      return Status::InvalidArgument("bad or duplicate worker id " +
                                     std::to_string(machine));
    }
    WorkerLink& link = coord->links_[machine];
    link.pid = -1;
    link.channel = std::move(probe.channel);
    link.faulty = std::move(probe.faulty);
    link.messenger = std::move(probe.messenger);
    link.alive = true;
    // Ship the authoritative initial worker state (a fresh engine's
    // state round-trips to itself; a restored one must override the
    // remote process's fresh construction).
    ByteWriter blob;
    engine->SaveWorkerState(engine->workers_[machine], &blob);
    ByteWriter msg = RpcMessage(MsgType::kLoadState);
    msg.Raw(blob.buffer().data(), blob.size());
    if (!link.messenger->Send(msg.buffer())) {
      return Status::IoError("initial state send failed");
    }
  }
  engine->SetStepDriver(coord.get());
  return coord;
}

void ProcCoordinator::WireLink(WorkerLink& link, uint64_t link_salt) {
  link.channel->set_stats(&channel_stats_);
  Channel* endpoint = link.channel.get();
  if (options_.fault.Armed()) {
    link.faulty =
        std::make_unique<FaultChannel>(endpoint, options_.fault, link_salt);
    link.faulty->set_fault_stats(&net_fault_stats_);
    endpoint = link.faulty.get();
  }
  link.messenger = std::make_unique<Messenger>(endpoint);
  link.messenger->set_fault_stats(&net_fault_stats_);
  if (options_.fault.enabled) {
    link.messenger->EnableReliable(ReliableFromWireFaults(options_.fault));
  }
}

ProcCoordinator::~ProcCoordinator() {
  const Status status = Shutdown();
  if (!status.ok()) {
    HETKG_LOG(Warning) << "proc shutdown: " << status.ToString();
  }
}

Status ProcCoordinator::ForkFleet() {
  // fork() duplicates only the calling thread: join the compute pool
  // first so no lock is held by a thread that won't exist in the
  // child. Parent and child each rebuild their own pool.
  engine_->TeardownPool();
  Status forked = Status::OK();
  for (uint32_t m = 0; m < links_.size() && forked.ok(); ++m) {
    forked = ForkWorker(m);
  }
  if (options_.transport == TransportKind::kTcp && forked.ok()) {
    // TCP children race to connect; map each accepted connection to
    // its machine by the kHello it opens with.
    for (size_t i = 0; i < links_.size() && forked.ok(); ++i) {
      Result<std::unique_ptr<TcpChannel>> accepted =
          listener_->Accept(kHandshakeMs);
      if (!accepted.ok()) {
        forked = accepted.status();
        break;
      }
      WorkerLink probe;
      probe.channel = std::move(accepted.value());
      WireLink(probe, /*link_salt=*/2000 + 2 * i);
      std::string payload;
      MsgType type;
      ByteReader r{std::string_view()};
      if (probe.messenger->Recv(&payload, kHandshakeMs) != RecvStatus::kOk ||
          !RpcOpen(payload, &type, &r) || type != MsgType::kHello) {
        forked = Status::Corruption("worker hello failed");
        break;
      }
      const uint32_t machine = r.U32();
      if (!r.ok() || machine >= links_.size() ||
          links_[machine].channel != nullptr) {
        forked = Status::Corruption("bad worker hello id");
        break;
      }
      links_[machine].channel = std::move(probe.channel);
      links_[machine].faulty = std::move(probe.faulty);
      links_[machine].messenger = std::move(probe.messenger);
      links_[machine].alive = true;
    }
  }
  engine_->RebuildPool();
  if (!forked.ok()) KillFleet();
  return forked;
}

Status ProcCoordinator::ForkWorker(uint32_t machine) {
  std::unique_ptr<Channel> parent_ep;
  std::unique_ptr<Channel> child_ep;
  if (options_.transport == TransportKind::kShm) {
    HETKG_ASSIGN_OR_RETURN(auto pair,
                           ShmRingChannel::CreatePair(
                               options_.shm_ring_bytes));
    parent_ep = std::move(pair.first);
    child_ep = std::move(pair.second);
  }
  // Crash flight recorder (shm transport): the region must exist
  // before fork() so both processes map the same pages — the child
  // writes into it, the parent harvests after a SIGKILL.
  std::unique_ptr<obs::FlightRecorder> flight;
  if (options_.transport == TransportKind::kShm &&
      engine_->config_.obs.TraceRequested()) {
    HETKG_ASSIGN_OR_RETURN(
        flight, obs::FlightRecorder::CreateAnonymous(options_.flight_slots));
  }
  const uint16_t connect_port =
      listener_ != nullptr ? listener_->port() : 0;

  const pid_t pid = fork();
  if (pid < 0) {
    return Status::Internal("fork() failed: " +
                            std::string(strerror(errno)));
  }
  if (pid == 0) {
    // Worker process. Runs the command loop against the inherited
    // engine and never returns to the caller's stack; _Exit skips
    // atexit/destructors so the parent's duplicated buffers and files
    // are left strictly alone.
    engine_->RebuildPool();
    std::unique_ptr<Channel> channel = std::move(child_ep);
    if (options_.transport == TransportKind::kTcp) {
      Result<std::unique_ptr<TcpChannel>> connected =
          TcpConnect("127.0.0.1", connect_port, options_.retry);
      if (!connected.ok()) std::_Exit(3);
      channel = std::move(connected.value());
    }
    // The worker direction of the link gets its own fault decorator
    // and counter sink (odd link salts; the coordinator direction uses
    // even ones), so faults fire independently on both directions.
    NetFaultStats fault_stats;
    Channel* endpoint = channel.get();
    std::unique_ptr<FaultChannel> faulty;
    if (options_.fault.Armed()) {
      faulty = std::make_unique<FaultChannel>(endpoint, options_.fault,
                                              /*link_salt=*/2 * machine + 1);
      faulty->set_fault_stats(&fault_stats);
      endpoint = faulty.get();
    }
    Messenger messenger(endpoint);
    messenger.set_fault_stats(&fault_stats);
    if (options_.fault.enabled) {
      messenger.EnableReliable(ReliableFromWireFaults(options_.fault));
    }
    if (options_.transport == TransportKind::kTcp) {
      ByteWriter hello = RpcMessage(MsgType::kHello);
      hello.U32(machine);
      if (!messenger.Send(hello.buffer())) std::_Exit(3);
    }
    ProcWorker worker(engine_, machine, &messenger, options_, flight.get(),
                      &fault_stats);
    std::_Exit(worker.Run());
  }

  WorkerLink& link = links_[machine];
  link.pid = pid;
  link.flight = std::move(flight);
  if (options_.transport == TransportKind::kShm) {
    link.channel = std::move(parent_ep);
    WireLink(link, /*link_salt=*/2 * machine);
    link.alive = true;
  }
  // TCP: channel attached by the accept loop in ForkFleet.
  return Status::OK();
}

void ProcCoordinator::KillFleet() {
  // Deliberate fleet teardown (restart path): the kills are the
  // coordinator's own doing, so no abnormal exit is recorded.
  for (WorkerLink& link : links_) {
    if (link.pid > 0) {
      kill(link.pid, SIGKILL);
      waitpid(link.pid, nullptr, 0);
      link.pid = -1;
    }
    if (link.channel != nullptr) link.channel->Close();
    link.messenger.reset();
    link.faulty.reset();
    link.channel.reset();
    link.alive = false;
  }
}

void ProcCoordinator::RecordExit(uint32_t machine, int wait_status,
                                 const char* context) {
  // Only abnormal terminations are worth surfacing in the end-of-run
  // summary; an orderly exit(0) is the expected shutdown handshake.
  WorkerExit exit;
  exit.machine = machine;
  exit.context = context;
  if (WIFSIGNALED(wait_status)) {
    exit.signaled = true;
    exit.code = WTERMSIG(wait_status);
  } else if (WIFEXITED(wait_status) && WEXITSTATUS(wait_status) != 0) {
    exit.signaled = false;
    exit.code = WEXITSTATUS(wait_status);
  } else {
    return;
  }
  worker_exits_.push_back(std::move(exit));
}

void ProcCoordinator::MarkWorkerFailed(uint32_t machine, uint64_t at_iter,
                                       const char* context) {
  worker_failed_ = true;
  WorkerLink& link = links_[machine];
  link.alive = false;
  if (link.pid > 0) {
    // SIGKILL works on SIGSTOPped processes too — this is the
    // watchdog's escalation path for hung (not just dead) workers.
    kill(link.pid, SIGKILL);
    int wait_status = 0;
    if (waitpid(link.pid, &wait_status, 0) == link.pid) {
      RecordExit(machine, wait_status, context);
    }
    link.pid = -1;
  }
  if (link.channel != nullptr) link.channel->Close();
  // Post-mortem: the dead worker's flight-recorder ring (shm region or
  // tcp spill file) still holds its last trace events.
  if (obs_on_) HarvestFlight(machine);
  // Kill-once / stop-once semantics: any scheduled fault at or before
  // the failure point has had its effect; pruning it keeps the
  // relaunched fleet (which rewinds to an earlier iteration) from
  // dying forever.
  std::erase_if(options_.kills, [at_iter](const ProcKill& k) {
    return k.iter <= at_iter;
  });
  std::erase_if(options_.stops, [at_iter](const ProcKill& k) {
    return k.iter <= at_iter;
  });
}

Status ProcCoordinator::ApplyBackendRpc(uint32_t machine, uint8_t type,
                                        ByteReader* r, bool* handled) {
  *handled = true;
  ps::ParameterServer* server = engine_->server_.get();
  switch (static_cast<MsgType>(type)) {
    case MsgType::kPull: {
      const std::vector<uint64_t> keys = r->U64Vec();
      if (!r->ok() || r->remaining() != 0) {
        return Status::Corruption("bad kPull");
      }
      size_t total_floats = 0;
      for (const uint64_t key : keys) total_floats += server->RowDim(key);
      std::vector<float> values(total_floats, 0.0f);
      std::vector<std::span<float>> spans;
      spans.reserve(keys.size());
      size_t offset = 0;
      for (const uint64_t key : keys) {
        const size_t dim = server->RowDim(key);
        spans.emplace_back(values.data() + offset, dim);
        offset += dim;
      }
      const ps::PullResult pull = server->PullBatch(machine, keys, spans);
      ByteWriter reply = RpcMessage(MsgType::kPullReply);
      reply.U64(pull.failed.size());
      for (const uint32_t idx : pull.failed) reply.U32(idx);
      reply.Raw(values.data(), values.size() * sizeof(float));
      if (!links_[machine].messenger->Send(reply.buffer())) {
        return Status::Internal("kPullReply send failed");
      }
      return Status::OK();
    }
    case MsgType::kPush: {
      const std::vector<uint64_t> keys = r->U64Vec();
      if (!r->ok()) return Status::Corruption("bad kPush");
      size_t total_floats = 0;
      for (const uint64_t key : keys) total_floats += server->RowDim(key);
      std::vector<float> grads(total_floats);
      if (!r->ReadRaw(grads.data(), total_floats * sizeof(float)) ||
          r->remaining() != 0) {
        return Status::Corruption("bad kPush payload");
      }
      std::vector<std::span<const float>> spans;
      spans.reserve(keys.size());
      size_t offset = 0;
      for (const uint64_t key : keys) {
        const size_t dim = server->RowDim(key);
        spans.emplace_back(grads.data() + offset, dim);
        offset += dim;
      }
      server->PushGradBatch(machine, keys, spans);
      return Status::OK();
    }
    case MsgType::kReadRow: {
      const uint64_t key = r->U64();
      if (!r->ok() || r->remaining() != 0) {
        return Status::Corruption("bad kReadRow");
      }
      const std::span<const float> value = server->Value(key);
      ByteWriter reply = RpcMessage(MsgType::kReadRowReply);
      reply.Raw(value.data(), value.size() * sizeof(float));
      if (!links_[machine].messenger->Send(reply.buffer())) {
        return Status::Internal("kReadRowReply send failed");
      }
      return Status::OK();
    }
    case MsgType::kCharge: {
      const uint64_t flops = r->U64();
      if (!r->ok() || r->remaining() != 0) {
        return Status::Corruption("bad kCharge");
      }
      engine_->cluster_.RecordCompute(machine, flops);
      return Status::OK();
    }
    case MsgType::kMetric: {
      const std::string name = r->Str();
      const uint64_t delta = r->U64();
      if (!r->ok() || r->remaining() != 0) {
        return Status::Corruption("bad kMetric");
      }
      server->metrics().Increment(name, delta);
      return Status::OK();
    }
    default:
      *handled = false;
      return Status::OK();
  }
}

Status ProcCoordinator::ServiceUntil(uint32_t machine, uint8_t until,
                                     std::string* payload,
                                     ByteReader* reader, uint64_t at_iter) {
  WorkerLink& link = links_[machine];
  // Fresh turn: the link may have sat idle while other workers took
  // theirs, so the liveness clock starts now, not at the last frame.
  link.messenger->TouchActivity();
  // The watchdog only makes sense when the worker actually beats: with
  // heartbeats off, a long compute phase is indistinguishable from a
  // hang and silence must not escalate.
  const bool watchdog_armed =
      options_.watchdog_ms > 0 && options_.heartbeat_ms > 0;
  int elapsed_ms = 0;
  for (;;) {
    if (!link.alive) {
      return Status::Internal("worker " + std::to_string(machine) +
                              " is not running");
    }
    const RecvStatus status =
        link.messenger->Recv(payload, options_.poll_ms);
    if (status == RecvStatus::kTimeout) {
      if (link.pid > 0) {
        int wait_status = 0;
        if (waitpid(link.pid, &wait_status, WNOHANG) == link.pid) {
          RecordExit(machine, wait_status, "died mid-turn");
          link.pid = -1;
          MarkWorkerFailed(machine, at_iter, "died mid-turn");
          return Status::Internal("worker " + std::to_string(machine) +
                                  " process died");
        }
      }
      if (watchdog_armed &&
          link.messenger->MillisSinceActivity() >= options_.watchdog_ms) {
        // The process exists (WNOHANG above) but nothing — not even a
        // heartbeat — arrived for a full watchdog window: hung (e.g.
        // SIGSTOPped). Escalate to SIGKILL and let the Train() rewind
        // path recover, exactly like a crashed worker.
        ++watchdog_escalations_;
        net_metrics_.Increment(metric::kWatchdogEscalations);
        obs::Tracer::Instant("watchdog.escalate", "proc", "machine",
                             static_cast<double>(machine), "silent_ms",
                             static_cast<double>(
                                 link.messenger->MillisSinceActivity()));
        MarkWorkerFailed(machine, at_iter, "watchdog escalation");
        return Status::DeadlineExceeded(
            "worker " + std::to_string(machine) +
            " hung (no heartbeat for " +
            std::to_string(options_.watchdog_ms) + " ms)");
      }
      elapsed_ms += options_.poll_ms;
      if (elapsed_ms >= options_.worker_deadline_ms) {
        MarkWorkerFailed(machine, at_iter, "turn deadline exceeded");
        return Status::DeadlineExceeded("worker " + std::to_string(machine) +
                                        " deadline exceeded");
      }
      continue;
    }
    if (status == RecvStatus::kClosed) {
      MarkWorkerFailed(machine, at_iter, "channel closed");
      return Status::Internal("worker " + std::to_string(machine) +
                              " channel closed");
    }
    if (status == RecvStatus::kCorrupt) {
      // Only possible without the retransmit layer (faults off): a
      // frame failed its CRC and nothing can resend it.
      MarkWorkerFailed(machine, at_iter, "corrupt frame");
      return Status::Corruption("worker " + std::to_string(machine) +
                                " sent a corrupt frame");
    }
    MsgType type;
    ByteReader r{std::string_view()};
    if (!RpcOpen(*payload, &type, &r)) {
      MarkWorkerFailed(machine, at_iter);
      return Status::Corruption("empty rpc frame");
    }
    if (TypeByte(type) == until) {
      *reader = r;
      return Status::OK();
    }
    bool handled = false;
    const Status applied = ApplyBackendRpc(machine, TypeByte(type), &r,
                                           &handled);
    if (!applied.ok() || !handled) {
      MarkWorkerFailed(machine, at_iter);
      return applied.ok() ? Status::Corruption("unexpected rpc type " +
                                               std::to_string(TypeByte(type)))
                          : applied;
    }
  }
}

Result<std::pair<double, uint64_t>> ProcCoordinator::DriveStep(
    uint32_t machine, size_t iter) {
  WorkerLink& link = links_[machine];
  if (!link.alive) {
    return Status::Internal("worker " + std::to_string(machine) +
                            " is not running");
  }
  ByteWriter cmd = RpcMessage(MsgType::kRunStep);
  cmd.U64(iter);
  Stopwatch sw;
  if (!link.messenger->Send(cmd.buffer())) {
    MarkWorkerFailed(machine, iter);
    return Status::Internal("kRunStep send failed");
  }
  std::string payload;
  ByteReader r{std::string_view()};
  HETKG_RETURN_IF_ERROR(ServiceUntil(machine, TypeByte(MsgType::kStepDone),
                                     &payload, &r, iter));
  ++rpc_round_trips_;
  link.messenger->ObserveRpcLatency(sw.ElapsedSeconds() * 1e6);
  const double loss = r.F64();
  const uint64_t pairs = r.U64();
  if (!r.ok() || r.remaining() != 0) {
    MarkWorkerFailed(machine, iter);
    return Status::Corruption("bad kStepDone");
  }
  return std::make_pair(loss, pairs);
}

Status ProcCoordinator::DriveEpochEnd(uint32_t machine) {
  WorkerLink& link = links_[machine];
  if (!link.alive) {
    return Status::Internal("worker " + std::to_string(machine) +
                            " is not running");
  }
  const uint64_t at_iter = engine_->global_iteration_;
  Stopwatch sw;
  if (!link.messenger->Send(RpcMessage(MsgType::kEpochEnd).buffer())) {
    MarkWorkerFailed(machine, at_iter);
    return Status::Internal("kEpochEnd send failed");
  }
  std::string payload;
  ByteReader r{std::string_view()};
  HETKG_RETURN_IF_ERROR(ServiceUntil(machine, TypeByte(MsgType::kEpochDone),
                                     &payload, &r, at_iter));
  ++rpc_round_trips_;
  link.messenger->ObserveRpcLatency(sw.ElapsedSeconds() * 1e6);
  const uint64_t hits = r.U64();
  const uint64_t misses = r.U64();
  if (!r.ok() || r.remaining() != 0) {
    MarkWorkerFailed(machine, at_iter);
    return Status::Corruption("bad kEpochDone");
  }
  // Land the worker's epoch counters in the engine's mirror; the
  // harvest loop right after DriveEpochEnd reads and zeroes them
  // exactly as it does the sim runtime's in-process counters.
  engine_->workers_[machine].hits = hits;
  engine_->workers_[machine].misses = misses;
  // Segment barrier: drain the worker's trace ring + cumulative
  // metrics while the protocol is between turns anyway.
  if (obs_on_) return ShipObs(machine);
  return Status::OK();
}

Status ProcCoordinator::SyncWorkerState(uint32_t machine) {
  WorkerLink& link = links_[machine];
  if (!link.alive) {
    return Status::Internal("worker " + std::to_string(machine) +
                            " is not running");
  }
  const uint64_t at_iter = engine_->global_iteration_;
  Stopwatch sw;
  if (!link.messenger->Send(RpcMessage(MsgType::kSyncState).buffer())) {
    MarkWorkerFailed(machine, at_iter);
    return Status::Internal("kSyncState send failed");
  }
  std::string payload;
  ByteReader r{std::string_view()};
  HETKG_RETURN_IF_ERROR(
      ServiceUntil(machine, TypeByte(MsgType::kWorkerState), &payload, &r,
                   at_iter));
  ++rpc_round_trips_;
  link.messenger->ObserveRpcLatency(sw.ElapsedSeconds() * 1e6);
  const uint32_t m = r.U32();
  if (!r.ok() || m != machine ||
      !engine_->LoadWorkerState(&engine_->workers_[machine], &r) ||
      r.remaining() != 0) {
    MarkWorkerFailed(machine, at_iter);
    return Status::Corruption("bad worker state blob");
  }
  return Status::OK();
}

Status ProcCoordinator::RestartWorkers() {
  if (standalone_) {
    return Status::Unimplemented(
        "cannot relaunch externally started (--connect) workers");
  }
  KillFleet();
  HETKG_RETURN_IF_ERROR(ForkFleet());
  worker_failed_ = false;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Cross-process observability (DESIGN.md §14).

const char* ProcCoordinator::TransportName() const {
  return options_.transport == TransportKind::kShm ? "shm" : "tcp";
}

ProcCoordinator::TransportTotals ProcCoordinator::Totals() const {
  TransportTotals t;
  t.rpc_round_trips = rpc_round_trips_;
  t.frames_sent = channel_stats_.frames_sent.load(std::memory_order_relaxed);
  t.bytes_sent = channel_stats_.bytes_sent.load(std::memory_order_relaxed);
  t.frames_received =
      channel_stats_.frames_received.load(std::memory_order_relaxed);
  t.bytes_received =
      channel_stats_.bytes_received.load(std::memory_order_relaxed);
  t.send_stalls = channel_stats_.send_stalls.load(std::memory_order_relaxed);
  const auto load = [](const std::atomic<uint64_t>& v) {
    return v.load(std::memory_order_relaxed);
  };
  // Coordinator-side injections only; each worker process reports its
  // own direction through the shipped obs registry.
  t.faults_injected = load(net_fault_stats_.injected_drops) +
                      load(net_fault_stats_.injected_duplicates) +
                      load(net_fault_stats_.injected_delays) +
                      load(net_fault_stats_.injected_corruptions) +
                      load(net_fault_stats_.injected_resets);
  t.crc_errors = load(net_fault_stats_.crc_errors);
  t.retransmits = load(net_fault_stats_.retransmits);
  t.heartbeats_received = load(net_fault_stats_.heartbeats_received);
  t.watchdog_escalations = watchdog_escalations_;
  return t;
}

void ProcCoordinator::SweepOrphanFlightSpills(const std::string& trace_out) {
  // A crashed previous run can leave <trace_out>.flight.w<m> spill
  // files behind (the coordinator died before its orderly-shutdown
  // cleanup). Sweep them once, before this run creates its own —
  // mirroring the stale-*.tmp checkpoint sweep.
  if (flight_swept_) return;
  flight_swept_ = true;
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::path out(trace_out);
  fs::path dir = out.parent_path();
  if (dir.empty()) dir = ".";
  const std::string prefix = out.filename().string() + ".flight.w";
  uint64_t removed = 0;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    if (ec) break;
    const std::string name = entry.path().filename().string();
    if (name.rfind(prefix, 0) != 0) continue;
    if (fs::remove(entry.path(), ec)) ++removed;
  }
  if (removed > 0) {
    HETKG_LOG(Info) << "swept " << removed
                    << " orphaned flight spill file(s) matching " << prefix
                    << "*";
    net_metrics_.Increment(metric::kObsFlightOrphansRemoved, removed);
  }
}

Status ProcCoordinator::SetupObs() {
  const obs::ObsConfig& obs_config = engine_->config_.obs;
  if (!obs_config.Enabled()) return Status::OK();
  obs_on_ = true;
  trace_on_ = obs_config.TraceRequested();
  if (trace_on_ && !standalone_) SweepOrphanFlightSpills(obs_config.trace_out);
  worker_regs_.assign(links_.size(), MetricRegistry());
  worker_gauges_.assign(links_.size(), {});
  for (uint32_t m = 0; m < links_.size(); ++m) {
    WorkerLink& link = links_[m];
    if (!link.alive) continue;
    link.messenger->EnableMetrics(&net_metrics_, TransportName());
    uint8_t flight_kind = 0;
    std::string flight_path;
    if (trace_on_) {
      if (link.flight != nullptr) {
        flight_kind = 1;  // Fork-inherited shm region.
      } else if (options_.transport == TransportKind::kTcp && !standalone_) {
        // Forked tcp worker: same filesystem, spill file next to the
        // trace output. (Standalone --connect workers may be on
        // another machine — no flight recorder there.)
        flight_kind = 2;
        flight_path = obs_config.trace_out + ".flight.w" + std::to_string(m);
        link.flight_path = flight_path;
      }
    }
    ByteWriter cmd = RpcMessage(MsgType::kStartObs);
    cmd.U8(trace_on_ ? 1 : 0);
    cmd.U64(options_.trace_ring_capacity);
    cmd.U8(flight_kind);
    cmd.U64(options_.flight_slots);
    cmd.Str(flight_path);
    cmd.Str(TransportName());
    if (!link.messenger->Send(cmd.buffer())) {
      MarkWorkerFailed(m, engine_->global_iteration_);
      return Status::Internal("kStartObs send failed");
    }
    if (trace_on_) HETKG_RETURN_IF_ERROR(ClockSync(m));
  }
  // Post-crash retry: the fresh trace session overwrites the file that
  // carried previously harvested flight tracks — re-inject them.
  for (const FlightCapture& capture : flights_) InjectFlight(capture);
  return Status::OK();
}

Status ProcCoordinator::ClockSync(uint32_t machine) {
  WorkerLink& link = links_[machine];
  const uint64_t at_iter = engine_->global_iteration_;
  int64_t best_offset = 0;
  uint64_t best_rtt = UINT64_MAX;
  // Min-RTT filter: the round with the least in-flight delay gives the
  // tightest bound on the midpoint estimate.
  for (int round = 0; round < 5; ++round) {
    const uint64_t t0 = obs::Tracer::NowMicros();
    if (!link.messenger->Send(RpcMessage(MsgType::kClockSync).buffer())) {
      MarkWorkerFailed(machine, at_iter);
      return Status::Internal("kClockSync send failed");
    }
    std::string payload;
    ByteReader r{std::string_view()};
    HETKG_RETURN_IF_ERROR(ServiceUntil(
        machine, TypeByte(MsgType::kClockSyncReply), &payload, &r, at_iter));
    const uint64_t worker_now = r.U64();
    if (!r.ok() || r.remaining() != 0) {
      MarkWorkerFailed(machine, at_iter);
      return Status::Corruption("bad kClockSyncReply");
    }
    const uint64_t t1 = obs::Tracer::NowMicros();
    const uint64_t rtt = t1 - t0;
    if (rtt < best_rtt) {
      best_rtt = rtt;
      best_offset = static_cast<int64_t>(worker_now) -
                    static_cast<int64_t>((t0 + t1) / 2);
    }
  }
  link.clock_offset_us = best_offset;
  return Status::OK();
}

Status ProcCoordinator::ShipObs(uint32_t machine) {
  WorkerLink& link = links_[machine];
  if (!link.alive) return Status::OK();
  const uint64_t at_iter = engine_->global_iteration_;
  Stopwatch sw;
  if (!link.messenger->Send(RpcMessage(MsgType::kShipObs).buffer())) {
    MarkWorkerFailed(machine, at_iter);
    return Status::Internal("kShipObs send failed");
  }
  std::string payload;
  ByteReader r{std::string_view()};
  HETKG_RETURN_IF_ERROR(ServiceUntil(machine, TypeByte(MsgType::kObsData),
                                     &payload, &r, at_iter));
  ++rpc_round_trips_;
  link.messenger->ObserveRpcLatency(sw.ElapsedSeconds() * 1e6);
  if (!IngestObsData(machine, &r)) {
    MarkWorkerFailed(machine, at_iter);
    return Status::Corruption("bad kObsData");
  }
  return Status::OK();
}

bool ProcCoordinator::IngestObsData(uint32_t machine, ByteReader* r) {
  if (machine >= worker_regs_.size()) return false;
  const uint64_t trace_len = r->U64();
  if (!r->ok() || trace_len > r->remaining()) return false;
  std::string trace_blob(trace_len, '\0');
  if (trace_len != 0 && !r->ReadRaw(trace_blob.data(), trace_len)) {
    return false;
  }
  if (trace_on_ && trace_len != 0 && obs::Tracer::Enabled()) {
    net_metrics_.Increment(metric::kNetShipBytes, trace_len);
    ByteReader tr(trace_blob.data(), trace_blob.size());
    if (!obs::Tracer::AddRemoteEvents(
            2 + machine, "worker " + std::to_string(machine),
            links_[machine].clock_offset_us, &tr)) {
      return false;
    }
  }
  const uint64_t n_gauges = r->U64();
  if (!r->ok()) return false;
  std::vector<std::pair<std::string, double>> gauges;
  gauges.reserve(n_gauges);
  for (uint64_t i = 0; i < n_gauges; ++i) {
    std::string name = r->Str();
    const double value = r->F64();
    if (!r->ok()) return false;
    gauges.emplace_back(std::move(name), value);
  }
  MetricRegistry reg;
  if (!reg.LoadState(r) || r->remaining() != 0) return false;
  // The shipment is cumulative: REPLACE the worker's slice wholesale,
  // so re-ships (epoch barriers, final drain) never double-count.
  worker_regs_[machine] = std::move(reg);
  worker_gauges_[machine] = std::move(gauges);
  return true;
}

Status ProcCoordinator::FlushObs() {
  if (!obs_on_) return Status::OK();
  for (uint32_t m = 0; m < links_.size(); ++m) {
    if (!links_[m].alive) continue;
    HETKG_RETURN_IF_ERROR(ShipObs(m));
  }
  return Status::OK();
}

const MetricRegistry* ProcCoordinator::ObsMetrics() const {
  if (!obs_on_) return nullptr;
  obs_report_ = net_metrics_;
  // The report is rebuilt wholesale each call, so the coordinator's
  // wire-fault counters fold in absolute (no watermark); zero counters
  // never create net.fault.* keys.
  FoldFaultStats(net_fault_stats_, /*last=*/nullptr, &obs_report_);
  for (size_t m = 0; m < worker_regs_.size(); ++m) {
    obs_report_.Merge(worker_regs_[m]);
    const std::string suffix = ".w" + std::to_string(m);
    for (const auto& [name, value] : worker_regs_[m].Snapshot()) {
      obs_report_.SetGauge(name + suffix, static_cast<double>(value));
    }
    for (const auto& [name, value] : worker_gauges_[m]) {
      obs_report_.SetGauge(name + suffix, value);
    }
  }
  return &obs_report_;
}

void ProcCoordinator::HarvestFlight(uint32_t machine) {
  if (!trace_on_) return;
  WorkerLink& link = links_[machine];
  ByteWriter blob;
  if (link.flight != nullptr) {
    link.flight->SerializeHarvest(&blob);
  } else if (!link.flight_path.empty()) {
    Result<std::unique_ptr<obs::FlightRecorder>> opened =
        obs::FlightRecorder::OpenFile(link.flight_path);
    if (!opened.ok()) return;
    opened.value()->SerializeHarvest(&blob);
  } else {
    return;
  }
  ByteReader probe(blob.buffer().data(), blob.size());
  if (probe.U64() == 0) return;  // Nothing recorded.
  FlightCapture capture;
  capture.machine = machine;
  capture.offset_us = link.clock_offset_us;
  capture.blob.assign(blob.buffer().data(), blob.size());
  InjectFlight(capture);
  // Keep the capture: a post-crash retry starts a fresh trace session
  // over the same file, and SetupObs re-injects it there.
  flights_.push_back(std::move(capture));
}

void ProcCoordinator::InjectFlight(const FlightCapture& capture) {
  if (!obs::Tracer::Enabled()) return;
  ByteReader r(capture.blob.data(), capture.blob.size());
  (void)obs::Tracer::AddRemoteEvents(
      1002 + capture.machine,
      "flight.w" + std::to_string(capture.machine), capture.offset_us, &r);
}

Status ProcCoordinator::Shutdown() {
  if (shut_down_) return Status::OK();
  shut_down_ = true;
  Status result = Status::OK();
  for (size_t m = 0; m < links_.size(); ++m) {
    WorkerLink& link = links_[m];
    if (!link.alive) continue;
    bool orderly = false;
    if (link.messenger->Send(RpcMessage(MsgType::kShutdown).buffer())) {
      int waited = 0;
      while (waited < kShutdownGraceMs) {
        std::string payload;
        const RecvStatus status =
            link.messenger->Recv(&payload, options_.poll_ms);
        if (status == RecvStatus::kClosed) break;
        if (status == RecvStatus::kTimeout || status == RecvStatus::kCorrupt) {
          // A corrupt straggler frame at teardown is not worth failing
          // the run over; just keep draining until kBye or the grace
          // deadline.
          waited += options_.poll_ms;
          continue;
        }
        MsgType type;
        ByteReader r{std::string_view()};
        if (!RpcOpen(payload, &type, &r)) continue;
        if (type == MsgType::kBye) {
          orderly = true;
          break;
        }
        if (type == MsgType::kObsData && obs_on_ &&
            m < worker_regs_.size()) {
          // The worker's final unsolicited shipment (sent just before
          // its kBye).
          (void)IngestObsData(static_cast<uint32_t>(m), &r);
          continue;
        }
        // Tolerate (and drop) any straggler message before the kBye.
      }
    }
    if (link.pid > 0) {
      if (!orderly) {
        kill(link.pid, SIGKILL);
        result = Status::Internal("worker " + std::to_string(m) +
                                  " needed SIGKILL at shutdown");
      }
      int wait_status = 0;
      if (waitpid(link.pid, &wait_status, 0) == link.pid) {
        // Surfaces both escalated teardowns and workers that died
        // abnormally on their own way out (nonzero exit, stray signal).
        RecordExit(static_cast<uint32_t>(m), wait_status,
                   orderly ? "abnormal exit at shutdown"
                           : "shutdown escalation");
      }
      link.pid = -1;
    }
    if (link.channel != nullptr) link.channel->Close();
    link.alive = false;
    // Orderly end of run: this run's own flight spill file has served
    // its purpose (the worker exited cleanly, nothing to harvest).
    if (orderly && !link.flight_path.empty()) {
      std::error_code ec;
      std::filesystem::remove(link.flight_path, ec);
    }
  }
  engine_->SetStepDriver(nullptr);
  return result;
}

// ---------------------------------------------------------------------------
// Standalone TCP worker.

Status RunStandaloneWorker(core::PsTrainingEngine* engine, uint32_t machine,
                           const std::string& host, uint16_t port,
                           const ProcOptions& options) {
  HETKG_ASSIGN_OR_RETURN(std::unique_ptr<TcpChannel> channel,
                         TcpConnect(host, port, options.retry));
  NetFaultStats fault_stats;
  Channel* endpoint = channel.get();
  std::unique_ptr<FaultChannel> faulty;
  if (options.fault.Armed()) {
    faulty = std::make_unique<FaultChannel>(endpoint, options.fault,
                                            /*link_salt=*/3000 + machine);
    faulty->set_fault_stats(&fault_stats);
    endpoint = faulty.get();
  }
  Messenger messenger(endpoint);
  messenger.set_fault_stats(&fault_stats);
  if (options.fault.enabled) {
    messenger.EnableReliable(ReliableFromWireFaults(options.fault));
  }
  ByteWriter hello = RpcMessage(MsgType::kHello);
  hello.U32(machine);
  if (!messenger.Send(hello.buffer())) {
    return Status::IoError("hello send failed");
  }
  ProcWorker worker(engine, machine, &messenger, options,
                    /*flight=*/nullptr, &fault_stats);
  const int code = worker.Run();
  if (code != 0) {
    return Status::Internal("worker loop exited with code " +
                            std::to_string(code));
  }
  return Status::OK();
}

}  // namespace hetkg::net
