#include "net/proc_runtime.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"
#include "net/local_channel.h"
#include "net/rpc.h"
#include "net/shm_ring.h"

namespace hetkg::net {

namespace {

/// Handshake / shutdown grace deadline (ms).
constexpr int kHandshakeMs = 30'000;
constexpr int kShutdownGraceMs = 5'000;

uint8_t TypeByte(MsgType t) { return static_cast<uint8_t>(t); }

}  // namespace

Result<TransportKind> ParseTransportKind(std::string_view name) {
  if (name == "shm") return TransportKind::kShm;
  if (name == "tcp") return TransportKind::kTcp;
  return Status::InvalidArgument("unknown proc transport: " +
                                 std::string(name));
}

// ---------------------------------------------------------------------------
// RemotePsBackend (worker-process side of the seam).

void RemotePsBackend::Abort(const char* what) {
  HETKG_LOG(Warning) << "worker RPC channel failed (" << what
                     << "); exiting";
  std::_Exit(2);
}

void RemotePsBackend::SendOrAbort(const ByteWriter& msg) {
  if (!messenger_->Send(msg.buffer())) Abort("send");
}

ps::PullResult RemotePsBackend::PullBatch(uint32_t machine,
                                          std::span<const EmbKey> keys,
                                          std::span<std::span<float>> out) {
  (void)machine;  // The channel itself identifies the worker.
  ByteWriter msg = RpcMessage(MsgType::kPull);
  msg.U64Vec(keys);
  SendOrAbort(msg);

  std::string payload;
  if (messenger_->Recv(&payload, -1) != RecvStatus::kOk) Abort("recv");
  MsgType type;
  ByteReader r{std::string_view()};
  if (!RpcOpen(payload, &type, &r) || type != MsgType::kPullReply) {
    Abort("expected kPullReply");
  }
  ps::PullResult result;
  const uint64_t n_failed = r.U64();
  std::vector<char> is_failed(keys.size(), 0);
  for (uint64_t i = 0; i < n_failed; ++i) {
    const uint32_t idx = r.U32();
    if (!r.ok() || idx >= keys.size()) Abort("bad kPullReply index");
    result.failed.push_back(idx);
    is_failed[idx] = 1;
  }
  // The reply carries every key's row back-to-back in key order; spans
  // of failed keys keep their previous contents (the stale-serve /
  // degraded-read contract of ParameterServer::PullBatch).
  for (size_t k = 0; k < keys.size(); ++k) {
    const size_t dim = server_->RowDim(keys[k]);
    if (is_failed[k]) {
      std::vector<float> discard(dim);
      if (!r.ReadRaw(discard.data(), dim * sizeof(float))) {
        Abort("short kPullReply");
      }
      continue;
    }
    if (out[k].size() != dim ||
        !r.ReadRaw(out[k].data(), dim * sizeof(float))) {
      Abort("short kPullReply");
    }
  }
  if (!r.ok() || r.remaining() != 0) Abort("trailing kPullReply bytes");
  return result;
}

ps::PushResult RemotePsBackend::PushGradBatch(
    uint32_t machine, std::span<const EmbKey> keys,
    std::span<const std::span<const float>> grads) {
  (void)machine;
  ByteWriter msg = RpcMessage(MsgType::kPush);
  msg.U64Vec(keys);
  for (const std::span<const float>& g : grads) {
    msg.Raw(g.data(), g.size() * sizeof(float));
  }
  // Fire-and-forget: the channel is FIFO and the coordinator applies
  // every queued message before answering the next blocking RPC, so
  // ordering (and hence the push-sequence numbering) is preserved. The
  // engine ignores the result in both runtimes.
  SendOrAbort(msg);
  return ps::PushResult{};
}

void RemotePsBackend::ReadRow(EmbKey key, std::span<float> out) {
  ByteWriter msg = RpcMessage(MsgType::kReadRow);
  msg.U64(key);
  SendOrAbort(msg);
  std::string payload;
  if (messenger_->Recv(&payload, -1) != RecvStatus::kOk) Abort("recv");
  MsgType type;
  ByteReader r{std::string_view()};
  if (!RpcOpen(payload, &type, &r) || type != MsgType::kReadRowReply ||
      !r.ReadRaw(out.data(), out.size() * sizeof(float)) ||
      r.remaining() != 0) {
    Abort("bad kReadRowReply");
  }
}

void RemotePsBackend::RecordCompute(uint32_t machine, uint64_t flops) {
  (void)machine;
  ByteWriter msg = RpcMessage(MsgType::kCharge);
  msg.U64(flops);
  SendOrAbort(msg);
}

void RemotePsBackend::IncrementServerMetric(const std::string& name,
                                            uint64_t delta) {
  ByteWriter msg = RpcMessage(MsgType::kMetric);
  msg.Str(name);
  msg.U64(delta);
  SendOrAbort(msg);
}

// ---------------------------------------------------------------------------
// ProcWorker (worker-process command loop).

int ProcWorker::Run() {
  // The worker process never runs Train(), checkpoints, or obs; the
  // coordinator owns all of those. It executes exactly the per-step
  // stage code, with every shared-state call routed over the channel.
  engine_->obs_active_ = false;
  engine_->SetStepDriver(nullptr);
  RemotePsBackend backend(messenger_, engine_->server_.get());
  engine_->SetPsBackend(&backend);
  core::PsTrainingEngine::Worker* w = &engine_->workers_[machine_];

  int exit_code = 1;
  for (;;) {
    std::string payload;
    if (messenger_->Recv(&payload, -1) != RecvStatus::kOk) break;
    MsgType type;
    ByteReader r{std::string_view()};
    if (!RpcOpen(payload, &type, &r)) break;
    if (type == MsgType::kRunStep) {
      const uint64_t iter = r.U64();
      if (!r.ok()) break;
      for (const ProcKill& kill : kills_) {
        if (kill.machine == machine_ && kill.iter == iter) {
          // Real fault injection: die exactly like a crashed worker,
          // BEFORE any RPC of this step, so the coordinator's state
          // sits at the pre-step barrier when it notices.
          raise(SIGKILL);
        }
      }
      const auto [loss, pairs] = engine_->Step(w, iter);
      ByteWriter done = RpcMessage(MsgType::kStepDone);
      done.F64(loss);
      done.U64(pairs);
      if (!messenger_->Send(done.buffer())) break;
    } else if (type == MsgType::kEpochEnd) {
      engine_->FlushPendingGradients(w);
      ByteWriter done = RpcMessage(MsgType::kEpochDone);
      done.U64(w->hits);
      done.U64(w->misses);
      // The engine's epoch harvest zeroes the per-epoch counters; the
      // worker mirrors that so next epoch's ratio starts fresh.
      w->hits = 0;
      w->misses = 0;
      if (!messenger_->Send(done.buffer())) break;
    } else if (type == MsgType::kSyncState) {
      ByteWriter blob;
      engine_->SaveWorkerState(*w, &blob);
      ByteWriter msg = RpcMessage(MsgType::kWorkerState);
      msg.Raw(blob.buffer().data(), blob.size());
      if (!messenger_->Send(msg.buffer())) break;
    } else if (type == MsgType::kLoadState) {
      const uint32_t m = r.U32();
      if (!r.ok() || m != machine_ ||
          !engine_->LoadWorkerState(w, &r) || r.remaining() != 0) {
        break;
      }
    } else if (type == MsgType::kShutdown) {
      messenger_->Send(RpcMessage(MsgType::kBye).buffer());
      exit_code = 0;
      break;
    } else {
      break;  // Protocol violation.
    }
  }
  engine_->SetPsBackend(nullptr);
  return exit_code;
}

// ---------------------------------------------------------------------------
// ProcCoordinator.

Result<std::unique_ptr<ProcCoordinator>> ProcCoordinator::ForkWorkers(
    core::PsTrainingEngine* engine, const ProcOptions& options) {
  std::unique_ptr<ProcCoordinator> coord(
      new ProcCoordinator(engine, options));
  coord->links_.resize(engine->workers_.size());
  if (options.transport == TransportKind::kTcp) {
    HETKG_ASSIGN_OR_RETURN(coord->listener_, TcpListener::Create(0));
  }
  HETKG_RETURN_IF_ERROR(coord->ForkFleet());
  engine->SetStepDriver(coord.get());
  return coord;
}

Result<std::unique_ptr<ProcCoordinator>> ProcCoordinator::ListenForWorkers(
    core::PsTrainingEngine* engine, uint16_t port,
    const ProcOptions& options) {
  std::unique_ptr<ProcCoordinator> coord(
      new ProcCoordinator(engine, options));
  coord->standalone_ = true;
  coord->links_.resize(engine->workers_.size());
  HETKG_ASSIGN_OR_RETURN(std::unique_ptr<TcpListener> listener,
                         TcpListener::Create(port));
  HETKG_LOG(Info) << "coordinator listening on port " << listener->port()
                  << " for " << coord->links_.size() << " workers";
  for (size_t i = 0; i < coord->links_.size(); ++i) {
    HETKG_ASSIGN_OR_RETURN(std::unique_ptr<TcpChannel> channel,
                           listener->Accept(kHandshakeMs));
    auto messenger = std::make_unique<Messenger>(channel.get());
    std::string payload;
    if (messenger->Recv(&payload, kHandshakeMs) != RecvStatus::kOk) {
      return Status::IoError("worker hello timed out");
    }
    MsgType type;
    ByteReader r{std::string_view()};
    if (!RpcOpen(payload, &type, &r) || type != MsgType::kHello) {
      return Status::Corruption("expected kHello");
    }
    const uint32_t machine = r.U32();
    if (!r.ok() || machine >= coord->links_.size() ||
        coord->links_[machine].alive) {
      return Status::InvalidArgument("bad or duplicate worker id " +
                                     std::to_string(machine));
    }
    WorkerLink& link = coord->links_[machine];
    link.pid = -1;
    link.channel = std::move(channel);
    link.messenger = std::move(messenger);
    link.alive = true;
    // Ship the authoritative initial worker state (a fresh engine's
    // state round-trips to itself; a restored one must override the
    // remote process's fresh construction).
    ByteWriter blob;
    engine->SaveWorkerState(engine->workers_[machine], &blob);
    ByteWriter msg = RpcMessage(MsgType::kLoadState);
    msg.Raw(blob.buffer().data(), blob.size());
    if (!link.messenger->Send(msg.buffer())) {
      return Status::IoError("initial state send failed");
    }
  }
  engine->SetStepDriver(coord.get());
  return coord;
}

ProcCoordinator::~ProcCoordinator() {
  const Status status = Shutdown();
  if (!status.ok()) {
    HETKG_LOG(Warning) << "proc shutdown: " << status.ToString();
  }
}

Status ProcCoordinator::ForkFleet() {
  // fork() duplicates only the calling thread: join the compute pool
  // first so no lock is held by a thread that won't exist in the
  // child. Parent and child each rebuild their own pool.
  engine_->TeardownPool();
  Status forked = Status::OK();
  for (uint32_t m = 0; m < links_.size() && forked.ok(); ++m) {
    forked = ForkWorker(m);
  }
  if (options_.transport == TransportKind::kTcp && forked.ok()) {
    // TCP children race to connect; map each accepted connection to
    // its machine by the kHello it opens with.
    for (size_t i = 0; i < links_.size() && forked.ok(); ++i) {
      Result<std::unique_ptr<TcpChannel>> accepted =
          listener_->Accept(kHandshakeMs);
      if (!accepted.ok()) {
        forked = accepted.status();
        break;
      }
      auto messenger = std::make_unique<Messenger>(accepted.value().get());
      std::string payload;
      MsgType type;
      ByteReader r{std::string_view()};
      if (messenger->Recv(&payload, kHandshakeMs) != RecvStatus::kOk ||
          !RpcOpen(payload, &type, &r) || type != MsgType::kHello) {
        forked = Status::Corruption("worker hello failed");
        break;
      }
      const uint32_t machine = r.U32();
      if (!r.ok() || machine >= links_.size() ||
          links_[machine].channel != nullptr) {
        forked = Status::Corruption("bad worker hello id");
        break;
      }
      links_[machine].channel = std::move(accepted.value());
      links_[machine].messenger = std::move(messenger);
      links_[machine].alive = true;
    }
  }
  engine_->RebuildPool();
  if (!forked.ok()) KillFleet();
  return forked;
}

Status ProcCoordinator::ForkWorker(uint32_t machine) {
  std::unique_ptr<Channel> parent_ep;
  std::unique_ptr<Channel> child_ep;
  if (options_.transport == TransportKind::kShm) {
    HETKG_ASSIGN_OR_RETURN(auto pair,
                           ShmRingChannel::CreatePair(
                               options_.shm_ring_bytes));
    parent_ep = std::move(pair.first);
    child_ep = std::move(pair.second);
  }
  const uint16_t connect_port =
      listener_ != nullptr ? listener_->port() : 0;

  const pid_t pid = fork();
  if (pid < 0) {
    return Status::Internal("fork() failed: " +
                            std::string(strerror(errno)));
  }
  if (pid == 0) {
    // Worker process. Runs the command loop against the inherited
    // engine and never returns to the caller's stack; _Exit skips
    // atexit/destructors so the parent's duplicated buffers and files
    // are left strictly alone.
    engine_->RebuildPool();
    std::unique_ptr<Channel> channel = std::move(child_ep);
    if (options_.transport == TransportKind::kTcp) {
      Result<std::unique_ptr<TcpChannel>> connected =
          TcpConnect("127.0.0.1", connect_port, options_.retry);
      if (!connected.ok()) std::_Exit(3);
      channel = std::move(connected.value());
    }
    Messenger messenger(channel.get());
    if (options_.transport == TransportKind::kTcp) {
      ByteWriter hello = RpcMessage(MsgType::kHello);
      hello.U32(machine);
      if (!messenger.Send(hello.buffer())) std::_Exit(3);
    }
    ProcWorker worker(engine_, machine, &messenger, options_.kills);
    std::_Exit(worker.Run());
  }

  WorkerLink& link = links_[machine];
  link.pid = pid;
  if (options_.transport == TransportKind::kShm) {
    link.channel = std::move(parent_ep);
    link.messenger = std::make_unique<Messenger>(link.channel.get());
    link.alive = true;
  }
  // TCP: channel attached by the accept loop in ForkFleet.
  return Status::OK();
}

void ProcCoordinator::KillFleet() {
  for (WorkerLink& link : links_) {
    if (link.pid > 0) {
      kill(link.pid, SIGKILL);
      waitpid(link.pid, nullptr, 0);
      link.pid = -1;
    }
    if (link.channel != nullptr) link.channel->Close();
    link.messenger.reset();
    link.channel.reset();
    link.alive = false;
  }
}

void ProcCoordinator::MarkWorkerFailed(uint32_t machine, uint64_t at_iter) {
  worker_failed_ = true;
  WorkerLink& link = links_[machine];
  link.alive = false;
  if (link.pid > 0) {
    kill(link.pid, SIGKILL);
    waitpid(link.pid, nullptr, 0);
    link.pid = -1;
  }
  if (link.channel != nullptr) link.channel->Close();
  // Kill-once semantics: any scheduled kill at or before the failure
  // point has had its effect; pruning it keeps the relaunched fleet
  // (which rewinds to an earlier iteration) from dying forever.
  std::erase_if(options_.kills, [at_iter](const ProcKill& k) {
    return k.iter <= at_iter;
  });
}

Status ProcCoordinator::ApplyBackendRpc(uint32_t machine, uint8_t type,
                                        ByteReader* r, bool* handled) {
  *handled = true;
  ps::ParameterServer* server = engine_->server_.get();
  switch (static_cast<MsgType>(type)) {
    case MsgType::kPull: {
      const std::vector<uint64_t> keys = r->U64Vec();
      if (!r->ok() || r->remaining() != 0) {
        return Status::Corruption("bad kPull");
      }
      size_t total_floats = 0;
      for (const uint64_t key : keys) total_floats += server->RowDim(key);
      std::vector<float> values(total_floats, 0.0f);
      std::vector<std::span<float>> spans;
      spans.reserve(keys.size());
      size_t offset = 0;
      for (const uint64_t key : keys) {
        const size_t dim = server->RowDim(key);
        spans.emplace_back(values.data() + offset, dim);
        offset += dim;
      }
      const ps::PullResult pull = server->PullBatch(machine, keys, spans);
      ByteWriter reply = RpcMessage(MsgType::kPullReply);
      reply.U64(pull.failed.size());
      for (const uint32_t idx : pull.failed) reply.U32(idx);
      reply.Raw(values.data(), values.size() * sizeof(float));
      if (!links_[machine].messenger->Send(reply.buffer())) {
        return Status::Internal("kPullReply send failed");
      }
      return Status::OK();
    }
    case MsgType::kPush: {
      const std::vector<uint64_t> keys = r->U64Vec();
      if (!r->ok()) return Status::Corruption("bad kPush");
      size_t total_floats = 0;
      for (const uint64_t key : keys) total_floats += server->RowDim(key);
      std::vector<float> grads(total_floats);
      if (!r->ReadRaw(grads.data(), total_floats * sizeof(float)) ||
          r->remaining() != 0) {
        return Status::Corruption("bad kPush payload");
      }
      std::vector<std::span<const float>> spans;
      spans.reserve(keys.size());
      size_t offset = 0;
      for (const uint64_t key : keys) {
        const size_t dim = server->RowDim(key);
        spans.emplace_back(grads.data() + offset, dim);
        offset += dim;
      }
      server->PushGradBatch(machine, keys, spans);
      return Status::OK();
    }
    case MsgType::kReadRow: {
      const uint64_t key = r->U64();
      if (!r->ok() || r->remaining() != 0) {
        return Status::Corruption("bad kReadRow");
      }
      const std::span<const float> value = server->Value(key);
      ByteWriter reply = RpcMessage(MsgType::kReadRowReply);
      reply.Raw(value.data(), value.size() * sizeof(float));
      if (!links_[machine].messenger->Send(reply.buffer())) {
        return Status::Internal("kReadRowReply send failed");
      }
      return Status::OK();
    }
    case MsgType::kCharge: {
      const uint64_t flops = r->U64();
      if (!r->ok() || r->remaining() != 0) {
        return Status::Corruption("bad kCharge");
      }
      engine_->cluster_.RecordCompute(machine, flops);
      return Status::OK();
    }
    case MsgType::kMetric: {
      const std::string name = r->Str();
      const uint64_t delta = r->U64();
      if (!r->ok() || r->remaining() != 0) {
        return Status::Corruption("bad kMetric");
      }
      server->metrics().Increment(name, delta);
      return Status::OK();
    }
    default:
      *handled = false;
      return Status::OK();
  }
}

Status ProcCoordinator::ServiceUntil(uint32_t machine, uint8_t until,
                                     std::string* payload,
                                     ByteReader* reader, uint64_t at_iter) {
  WorkerLink& link = links_[machine];
  int elapsed_ms = 0;
  for (;;) {
    if (!link.alive) {
      return Status::Internal("worker " + std::to_string(machine) +
                              " is not running");
    }
    const RecvStatus status =
        link.messenger->Recv(payload, options_.poll_ms);
    if (status == RecvStatus::kTimeout) {
      if (link.pid > 0 && waitpid(link.pid, nullptr, WNOHANG) == link.pid) {
        link.pid = -1;
        MarkWorkerFailed(machine, at_iter);
        return Status::Internal("worker " + std::to_string(machine) +
                                " process died");
      }
      elapsed_ms += options_.poll_ms;
      if (elapsed_ms >= options_.worker_deadline_ms) {
        MarkWorkerFailed(machine, at_iter);
        return Status::Internal("worker " + std::to_string(machine) +
                                " deadline exceeded");
      }
      continue;
    }
    if (status == RecvStatus::kClosed) {
      MarkWorkerFailed(machine, at_iter);
      return Status::Internal("worker " + std::to_string(machine) +
                              " channel closed");
    }
    MsgType type;
    ByteReader r{std::string_view()};
    if (!RpcOpen(*payload, &type, &r)) {
      MarkWorkerFailed(machine, at_iter);
      return Status::Corruption("empty rpc frame");
    }
    if (TypeByte(type) == until) {
      *reader = r;
      return Status::OK();
    }
    bool handled = false;
    const Status applied = ApplyBackendRpc(machine, TypeByte(type), &r,
                                           &handled);
    if (!applied.ok() || !handled) {
      MarkWorkerFailed(machine, at_iter);
      return applied.ok() ? Status::Corruption("unexpected rpc type " +
                                               std::to_string(TypeByte(type)))
                          : applied;
    }
  }
}

Result<std::pair<double, uint64_t>> ProcCoordinator::DriveStep(
    uint32_t machine, size_t iter) {
  WorkerLink& link = links_[machine];
  if (!link.alive) {
    return Status::Internal("worker " + std::to_string(machine) +
                            " is not running");
  }
  ByteWriter cmd = RpcMessage(MsgType::kRunStep);
  cmd.U64(iter);
  if (!link.messenger->Send(cmd.buffer())) {
    MarkWorkerFailed(machine, iter);
    return Status::Internal("kRunStep send failed");
  }
  std::string payload;
  ByteReader r{std::string_view()};
  HETKG_RETURN_IF_ERROR(ServiceUntil(machine, TypeByte(MsgType::kStepDone),
                                     &payload, &r, iter));
  const double loss = r.F64();
  const uint64_t pairs = r.U64();
  if (!r.ok() || r.remaining() != 0) {
    MarkWorkerFailed(machine, iter);
    return Status::Corruption("bad kStepDone");
  }
  return std::make_pair(loss, pairs);
}

Status ProcCoordinator::DriveEpochEnd(uint32_t machine) {
  WorkerLink& link = links_[machine];
  if (!link.alive) {
    return Status::Internal("worker " + std::to_string(machine) +
                            " is not running");
  }
  const uint64_t at_iter = engine_->global_iteration_;
  if (!link.messenger->Send(RpcMessage(MsgType::kEpochEnd).buffer())) {
    MarkWorkerFailed(machine, at_iter);
    return Status::Internal("kEpochEnd send failed");
  }
  std::string payload;
  ByteReader r{std::string_view()};
  HETKG_RETURN_IF_ERROR(ServiceUntil(machine, TypeByte(MsgType::kEpochDone),
                                     &payload, &r, at_iter));
  const uint64_t hits = r.U64();
  const uint64_t misses = r.U64();
  if (!r.ok() || r.remaining() != 0) {
    MarkWorkerFailed(machine, at_iter);
    return Status::Corruption("bad kEpochDone");
  }
  // Land the worker's epoch counters in the engine's mirror; the
  // harvest loop right after DriveEpochEnd reads and zeroes them
  // exactly as it does the sim runtime's in-process counters.
  engine_->workers_[machine].hits = hits;
  engine_->workers_[machine].misses = misses;
  return Status::OK();
}

Status ProcCoordinator::SyncWorkerState(uint32_t machine) {
  WorkerLink& link = links_[machine];
  if (!link.alive) {
    return Status::Internal("worker " + std::to_string(machine) +
                            " is not running");
  }
  const uint64_t at_iter = engine_->global_iteration_;
  if (!link.messenger->Send(RpcMessage(MsgType::kSyncState).buffer())) {
    MarkWorkerFailed(machine, at_iter);
    return Status::Internal("kSyncState send failed");
  }
  std::string payload;
  ByteReader r{std::string_view()};
  HETKG_RETURN_IF_ERROR(
      ServiceUntil(machine, TypeByte(MsgType::kWorkerState), &payload, &r,
                   at_iter));
  const uint32_t m = r.U32();
  if (!r.ok() || m != machine ||
      !engine_->LoadWorkerState(&engine_->workers_[machine], &r) ||
      r.remaining() != 0) {
    MarkWorkerFailed(machine, at_iter);
    return Status::Corruption("bad worker state blob");
  }
  return Status::OK();
}

Status ProcCoordinator::RestartWorkers() {
  if (standalone_) {
    return Status::Unimplemented(
        "cannot relaunch externally started (--connect) workers");
  }
  KillFleet();
  HETKG_RETURN_IF_ERROR(ForkFleet());
  worker_failed_ = false;
  return Status::OK();
}

Status ProcCoordinator::Shutdown() {
  if (shut_down_) return Status::OK();
  shut_down_ = true;
  Status result = Status::OK();
  for (size_t m = 0; m < links_.size(); ++m) {
    WorkerLink& link = links_[m];
    if (!link.alive) continue;
    bool orderly = false;
    if (link.messenger->Send(RpcMessage(MsgType::kShutdown).buffer())) {
      int waited = 0;
      while (waited < kShutdownGraceMs) {
        std::string payload;
        const RecvStatus status =
            link.messenger->Recv(&payload, options_.poll_ms);
        if (status == RecvStatus::kClosed) break;
        if (status == RecvStatus::kTimeout) {
          waited += options_.poll_ms;
          continue;
        }
        MsgType type;
        ByteReader r{std::string_view()};
        if (RpcOpen(payload, &type, &r) && type == MsgType::kBye) {
          orderly = true;
          break;
        }
        // Tolerate (and drop) any straggler message before the kBye.
      }
    }
    if (link.pid > 0) {
      if (!orderly) {
        kill(link.pid, SIGKILL);
        result = Status::Internal("worker " + std::to_string(m) +
                                  " needed SIGKILL at shutdown");
      }
      waitpid(link.pid, nullptr, 0);
      link.pid = -1;
    }
    if (link.channel != nullptr) link.channel->Close();
    link.alive = false;
  }
  engine_->SetStepDriver(nullptr);
  return result;
}

// ---------------------------------------------------------------------------
// Standalone TCP worker.

Status RunStandaloneWorker(core::PsTrainingEngine* engine, uint32_t machine,
                           const std::string& host, uint16_t port,
                           const ProcOptions& options) {
  HETKG_ASSIGN_OR_RETURN(std::unique_ptr<TcpChannel> channel,
                         TcpConnect(host, port, options.retry));
  Messenger messenger(channel.get());
  ByteWriter hello = RpcMessage(MsgType::kHello);
  hello.U32(machine);
  if (!messenger.Send(hello.buffer())) {
    return Status::IoError("hello send failed");
  }
  ProcWorker worker(engine, machine, &messenger, options.kills);
  const int code = worker.Run();
  if (code != 0) {
    return Status::Internal("worker loop exited with code " +
                            std::to_string(code));
  }
  return Status::OK();
}

}  // namespace hetkg::net
