#include "net/fault_channel.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "obs/trace.h"

namespace hetkg::net {

namespace {

// Wire-fault decision salts, disjoint from sim/transport.cpp's and the
// Messenger's jitter salt so shared seeds stay independent.
constexpr uint64_t kWireDropSalt = 0xF1D0ULL;
constexpr uint64_t kWireDuplicateSalt = 0xF1D1ULL;
constexpr uint64_t kWireDelaySalt = 0xF1D2ULL;
constexpr uint64_t kWireCorruptSalt = 0xF1C0ULL;
constexpr uint64_t kWireCorruptIndexSalt = 0xF1C1ULL;
constexpr uint64_t kWireResetSalt = 0xF1CEULL;

bool Scripted(const std::vector<uint64_t>& ticks, uint64_t tick) {
  return std::find(ticks.begin(), ticks.end(), tick) != ticks.end();
}

}  // namespace

Messenger::ReliableConfig ReliableFromWireFaults(
    const WireFaultConfig& fault) {
  Messenger::ReliableConfig config;
  config.enabled = fault.enabled;
  config.seed = fault.seed;
  return config;
}

FaultChannel::FaultChannel(Channel* inner, const WireFaultConfig& config,
                           uint64_t link_salt)
    : inner_(inner), config_(config), link_salt_(link_salt) {}

double FaultChannel::Unit(uint64_t tick, uint64_t salt) const {
  return sim::FaultPlan::HashUnit(config_.seed ^ link_salt_, tick, salt);
}

void FaultChannel::Count(std::atomic<uint64_t> NetFaultStats::* counter) {
  if (fault_stats_ != nullptr) {
    (fault_stats_->*counter).fetch_add(1, std::memory_order_relaxed);
  }
}

bool FaultChannel::Send(std::string_view frame) {
  const uint64_t tick = tick_++;
  if (!config_.enabled) return inner_->Send(frame);

  if (Scripted(config_.drop_ticks, tick) ||
      (config_.drop_prob > 0.0 &&
       Unit(tick, kWireDropSalt) < config_.drop_prob)) {
    // Swallowed: from the sender's view the frame left; the receiver
    // never sees it. The retransmit layer above must heal it.
    Count(&NetFaultStats::injected_drops);
    obs::Tracer::Instant("net.fault.drop", "net", "tick",
                         static_cast<double>(tick));
    return true;
  }

  if (Scripted(config_.reset_ticks, tick) ||
      (config_.reset_prob > 0.0 &&
       Unit(tick, kWireResetSalt) < config_.reset_prob)) {
    Count(&NetFaultStats::injected_resets);
    obs::Tracer::Instant("net.fault.reset", "net", "tick",
                         static_cast<double>(tick));
    // Mid-frame connection reset: only a prefix of the frame made it
    // out. Frames too small to truncate are simply lost.
    if (frame.size() <= 1) return true;
    return inner_->Send(frame.substr(0, frame.size() / 2));
  }

  std::string mutated;
  std::string_view out = frame;
  if (Scripted(config_.corrupt_ticks, tick) ||
      (config_.corrupt_prob > 0.0 &&
       Unit(tick, kWireCorruptSalt) < config_.corrupt_prob)) {
    Count(&NetFaultStats::injected_corruptions);
    obs::Tracer::Instant("net.fault.corrupt", "net", "tick",
                         static_cast<double>(tick));
    mutated.assign(frame);
    if (mutated.empty()) {
      mutated.push_back('\x5A');
    } else {
      const size_t index = static_cast<size_t>(
          Unit(tick, kWireCorruptIndexSalt) *
          static_cast<double>(mutated.size()));
      mutated[std::min(index, mutated.size() - 1)] ^= 0x5A;
    }
    out = mutated;
  }

  if (config_.delay_prob > 0.0 &&
      Unit(tick, kWireDelaySalt) < config_.delay_prob) {
    Count(&NetFaultStats::injected_delays);
    std::this_thread::sleep_for(std::chrono::milliseconds(config_.delay_ms));
  }

  const bool sent = inner_->Send(out);
  if (sent && (Scripted(config_.duplicate_ticks, tick) ||
               (config_.duplicate_prob > 0.0 &&
                Unit(tick, kWireDuplicateSalt) < config_.duplicate_prob))) {
    Count(&NetFaultStats::injected_duplicates);
    obs::Tracer::Instant("net.fault.duplicate", "net", "tick",
                         static_cast<double>(tick));
    inner_->Send(out);
  }
  return sent;
}

RecvStatus FaultChannel::Recv(std::string* frame, int timeout_ms) {
  return inner_->Recv(frame, timeout_ms);
}

void FaultChannel::Close() { inner_->Close(); }

}  // namespace hetkg::net
