#ifndef HETKG_NET_SHM_RING_H_
#define HETKG_NET_SHM_RING_H_

#include <cstddef>
#include <memory>
#include <utility>

#include "common/status.h"
#include "net/channel.h"

namespace hetkg::net {

/// One anonymous MAP_SHARED region holding a pair of SPSC streaming
/// byte rings (one per direction) plus their process-shared, robust
/// synchronization state. Created BEFORE fork(); both processes then
/// address the same physical pages through their inherited mapping —
/// the co-located-worker transport (DESIGN.md §13), matching DGL-KE's
/// shared-memory path for same-host workers.
///
/// Robustness: the mutexes are PTHREAD_MUTEX_ROBUST, so a worker dying
/// (SIGKILL) while holding one surfaces as EOWNERDEAD on the peer's
/// next lock; the survivor makes the mutex consistent and treats the
/// channel as closed instead of hanging — which is how the coordinator
/// detects a killed worker without a signal round-trip.
class ShmRegion;

/// Channel endpoint over one direction-pair of a ShmRegion. Frames are
/// [u64 length][payload] streamed through the ring in chunks, so a
/// frame larger than the ring capacity still flows under backpressure.
class ShmRingChannel final : public Channel {
 public:
  /// The region and both endpoints, ready to split across a fork().
  /// `ring_bytes` is the per-direction buffer capacity.
  static Result<std::pair<std::unique_ptr<ShmRingChannel>,
                          std::unique_ptr<ShmRingChannel>>>
  CreatePair(size_t ring_bytes);

  ~ShmRingChannel() override;

  bool Send(std::string_view frame) override;
  RecvStatus Recv(std::string* frame, int timeout_ms) override;
  void Close() override;

 private:
  ShmRingChannel(std::shared_ptr<ShmRegion> region, int side);

  std::shared_ptr<ShmRegion> region_;
  const int side_;
};

}  // namespace hetkg::net

#endif  // HETKG_NET_SHM_RING_H_
