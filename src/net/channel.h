#ifndef HETKG_NET_CHANNEL_H_
#define HETKG_NET_CHANNEL_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/metrics.h"
#include "sim/transport.h"

namespace hetkg::net {

/// Upper bound on one framed message. Generous enough for a full
/// worker-state blob of any test-scale run; a frame above it signals a
/// corrupted length prefix, not a real payload.
constexpr uint64_t kMaxFrameBytes = 256ull << 20;

enum class RecvStatus {
  kOk,
  /// No frame arrived within the caller's timeout; the channel is
  /// still usable.
  kTimeout,
  /// The peer closed (or died) and every buffered frame has been
  /// drained — the terminal state.
  kClosed,
};

/// A bidirectional, reliable, ordered byte-frame channel between two
/// processes (DESIGN.md §13). Implementations: the in-process
/// LocalChannel (tests), the shared-memory ring pair (co-located
/// workers), and TCP with length-prefixed framing (cross-machine).
///
/// Contract shared by every implementation:
///   * frames arrive whole, in send order, at most `kMaxFrameBytes`;
///   * `Send` returns false only when the channel is closed (the frame
///     is dropped);
///   * `Recv` with `timeout_ms < 0` blocks until a frame or close; a
///     non-negative timeout applies to the *start* of a frame — once a
///     frame's first bytes exist, Recv finishes it (a stalled peer
///     mid-frame eventually reads as kClosed, never as a desynced
///     stream);
///   * `Close` is safe from another thread and wakes blocked callers;
///   * zero-length frames are legal and round-trip.
/// Always-on transport accounting. Relaxed atomics so the real
/// transports (whose Send/Recv run in different processes' threads)
/// can share one instance per coordinator; never serialized into
/// training state, so counting has no bit-identity impact. The
/// launcher's proc `net.*` summary reads these even with obs off.
struct ChannelStats {
  std::atomic<uint64_t> frames_sent{0};
  std::atomic<uint64_t> bytes_sent{0};
  std::atomic<uint64_t> frames_received{0};
  std::atomic<uint64_t> bytes_received{0};
  /// Times a sender found its ring full and had to wait (shm only —
  /// the backpressure signal of an undersized --shm_ring_bytes).
  std::atomic<uint64_t> send_stalls{0};
};

class Channel {
 public:
  virtual ~Channel() = default;
  virtual bool Send(std::string_view frame) = 0;
  virtual RecvStatus Recv(std::string* frame, int timeout_ms) = 0;
  virtual void Close() = 0;

  /// Attaches a stats sink (owned by the caller, outliving the
  /// channel). Implementations without instrumentation ignore it.
  void set_stats(ChannelStats* stats) { stats_ = stats; }

 protected:
  void RecordSend(size_t bytes) {
    if (stats_ == nullptr) return;
    stats_->frames_sent.fetch_add(1, std::memory_order_relaxed);
    stats_->bytes_sent.fetch_add(bytes, std::memory_order_relaxed);
  }
  void RecordRecv(size_t bytes) {
    if (stats_ == nullptr) return;
    stats_->frames_received.fetch_add(1, std::memory_order_relaxed);
    stats_->bytes_received.fetch_add(bytes, std::memory_order_relaxed);
  }

  ChannelStats* stats_ = nullptr;
};

/// Connect-retry policy for the real-socket transports, shaped from the
/// same sim::FaultConfig fields PR-2's transport retries use —
/// `max_retries` attempts after the first, exponential backoff starting
/// at `backoff_seconds` (floored at 1ms: simulated backoffs are
/// microseconds, real sockets need real waits).
struct RetryPolicy {
  uint32_t max_retries = 3;
  double backoff_seconds = 200e-6;

  static RetryPolicy FromFaultConfig(const sim::FaultConfig& fault) {
    RetryPolicy policy;
    policy.max_retries = fault.max_retries;
    policy.backoff_seconds = fault.retry_backoff_seconds;
    return policy;
  }
};

/// Sequenced messaging over a Channel: every frame carries a little-
/// endian u64 sequence number, and the receiver drops any frame whose
/// sequence it has already delivered. Real sockets can present
/// duplicates (a retried send whose first copy did arrive); dropping
/// them here is the transport-level analogue of the parameter server's
/// per-worker push-sequence guard, and makes RPC delivery exactly-once
/// from the dispatcher's point of view.
class Messenger {
 public:
  explicit Messenger(Channel* channel) : channel_(channel) {}

  bool Send(std::string_view payload) {
    return SendWithSeq(++next_seq_, payload);
  }

  /// Test hook: send under an explicit sequence number (re-sending a
  /// consumed one injects a duplicate the receiver must drop).
  bool SendWithSeq(uint64_t seq, std::string_view payload) {
    std::string frame;
    frame.resize(8 + payload.size());
    std::memcpy(frame.data(), &seq, 8);
    std::memcpy(frame.data() + 8, payload.data(), payload.size());
    const bool sent = channel_->Send(frame);
    if (sent && metrics_ != nullptr) {
      metrics_->Increment(metric::kNetFramesSent);
      metrics_->Increment(metric::kNetBytesSent, frame.size());
      metrics_->Observe(frame_hist_, static_cast<double>(frame.size()));
    }
    return sent;
  }

  RecvStatus Recv(std::string* payload, int timeout_ms) {
    for (;;) {
      std::string frame;
      const RecvStatus status = channel_->Recv(&frame, timeout_ms);
      if (status != RecvStatus::kOk) return status;
      if (metrics_ != nullptr) {
        metrics_->Increment(metric::kNetFramesReceived);
        metrics_->Increment(metric::kNetBytesReceived, frame.size());
      }
      if (frame.size() < 8) return RecvStatus::kClosed;  // Corrupt peer.
      uint64_t seq = 0;
      std::memcpy(&seq, frame.data(), 8);
      if (seq <= delivered_seq_) continue;  // Duplicate: drop silently.
      delivered_seq_ = seq;
      payload->assign(frame.data() + 8, frame.size() - 8);
      return RecvStatus::kOk;
    }
  }

  /// Enables transport profiling (DESIGN.md §14) into `metrics`, which
  /// must outlive the messenger and be touched only from the thread
  /// that calls Send/Recv: per-frame payload sizes land in the
  /// net.frame.bytes.<transport> histogram and frame/byte counters;
  /// blocking round-trip times fed via ObserveRpcLatency land in
  /// net.rpc.latency_us.<transport>.
  void EnableMetrics(MetricRegistry* metrics, std::string_view transport) {
    metrics_ = metrics;
    frame_hist_ = std::string(metric::kNetFrameBytes) + "." +
                  std::string(transport);
    rpc_hist_ = std::string(metric::kNetRpcLatency) + "." +
                std::string(transport);
  }
  bool MetricsEnabled() const { return metrics_ != nullptr; }
  void ObserveRpcLatency(double micros) {
    if (metrics_ != nullptr) metrics_->Observe(rpc_hist_, micros);
  }

  Channel* channel() { return channel_; }
  uint64_t last_sent_seq() const { return next_seq_; }

 private:
  Channel* channel_;
  uint64_t next_seq_ = 0;
  uint64_t delivered_seq_ = 0;
  MetricRegistry* metrics_ = nullptr;
  std::string frame_hist_;
  std::string rpc_hist_;
};

}  // namespace hetkg::net

#endif  // HETKG_NET_CHANNEL_H_
