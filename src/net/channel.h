#ifndef HETKG_NET_CHANNEL_H_
#define HETKG_NET_CHANNEL_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>

#include "common/metrics.h"
#include "common/status.h"
#include "sim/transport.h"

namespace hetkg::net {

/// Upper bound on one framed message. Generous enough for a full
/// worker-state blob of any test-scale run; a frame above it signals a
/// corrupted length prefix, not a real payload.
constexpr uint64_t kMaxFrameBytes = 256ull << 20;

enum class RecvStatus {
  kOk,
  /// No frame arrived within the caller's timeout; the channel is
  /// still usable.
  kTimeout,
  /// The peer closed (or died) and every buffered frame has been
  /// drained — the terminal state.
  kClosed,
  /// A frame arrived but failed integrity verification (short frame or
  /// CRC-32 mismatch). Only the Messenger returns this, and only in
  /// non-reliable mode — with the retransmit layer on, corruption is
  /// healed internally instead (DESIGN.md §15).
  kCorrupt,
};

/// A bidirectional, reliable, ordered byte-frame channel between two
/// processes (DESIGN.md §13). Implementations: the in-process
/// LocalChannel (tests), the shared-memory ring pair (co-located
/// workers), and TCP with length-prefixed framing (cross-machine).
///
/// Contract shared by every implementation:
///   * frames arrive whole, in send order, at most `kMaxFrameBytes`;
///   * `Send` returns false only when the channel is closed (the frame
///     is dropped);
///   * `Recv` with `timeout_ms < 0` blocks until a frame or close; a
///     non-negative timeout applies to the *start* of a frame — once a
///     frame's first bytes exist, Recv finishes it (a stalled peer
///     mid-frame eventually reads as kClosed, never as a desynced
///     stream);
///   * `Close` is safe from another thread and wakes blocked callers;
///   * zero-length frames are legal and round-trip.
/// Always-on transport accounting. Relaxed atomics so the real
/// transports (whose Send/Recv run in different processes' threads)
/// can share one instance per coordinator; never serialized into
/// training state, so counting has no bit-identity impact. The
/// launcher's proc `net.*` summary reads these even with obs off.
struct ChannelStats {
  std::atomic<uint64_t> frames_sent{0};
  std::atomic<uint64_t> bytes_sent{0};
  std::atomic<uint64_t> frames_received{0};
  std::atomic<uint64_t> bytes_received{0};
  /// Times a sender found its ring full and had to wait (shm only —
  /// the backpressure signal of an undersized --shm_ring_bytes).
  std::atomic<uint64_t> send_stalls{0};
};

/// Always-on fault accounting (DESIGN.md §15), shared by the
/// FaultChannel decorator (injection side) and the Messenger
/// (detection/healing side). Relaxed atomics: the worker's heartbeat
/// thread and the main command loop both count into one instance.
/// Never serialized into training state; folded into the
/// never-serialized net metric registries (FoldFaultStats) only when a
/// counter is nonzero, so fault-free runs export no net.fault.* keys.
struct NetFaultStats {
  std::atomic<uint64_t> injected_drops{0};
  std::atomic<uint64_t> injected_duplicates{0};
  std::atomic<uint64_t> injected_delays{0};
  std::atomic<uint64_t> injected_corruptions{0};
  std::atomic<uint64_t> injected_resets{0};
  std::atomic<uint64_t> crc_errors{0};
  std::atomic<uint64_t> retransmits{0};
  std::atomic<uint64_t> duplicate_frames_dropped{0};
  std::atomic<uint64_t> heartbeats_sent{0};
  std::atomic<uint64_t> heartbeats_received{0};
};

/// Plain snapshot of NetFaultStats, used as the "already folded"
/// watermark for delta folding.
struct NetFaultCounts {
  uint64_t injected_drops = 0;
  uint64_t injected_duplicates = 0;
  uint64_t injected_delays = 0;
  uint64_t injected_corruptions = 0;
  uint64_t injected_resets = 0;
  uint64_t crc_errors = 0;
  uint64_t retransmits = 0;
  uint64_t duplicate_frames_dropped = 0;
  uint64_t heartbeats_received = 0;
};

/// Folds `stats` into `metrics` under the net.fault.* / watchdog.*
/// names. With `last` non-null, only the delta since the previous fold
/// is added and `last` advances (for cumulative registries that are
/// shipped repeatedly); with `last` null the absolute totals are added
/// (for registries rebuilt from scratch per export). Zero counters are
/// never touched, so their keys are never created.
void FoldFaultStats(const NetFaultStats& stats, NetFaultCounts* last,
                    MetricRegistry* metrics);

/// Monotonic milliseconds (steady clock) for retransmit timers and
/// liveness deadlines. Wall-clock only — never feeds training state.
int64_t SteadyNowMs();

class Channel {
 public:
  virtual ~Channel() = default;
  virtual bool Send(std::string_view frame) = 0;
  virtual RecvStatus Recv(std::string* frame, int timeout_ms) = 0;
  virtual void Close() = 0;

  /// Attaches a stats sink (owned by the caller, outliving the
  /// channel). Implementations without instrumentation ignore it.
  void set_stats(ChannelStats* stats) { stats_ = stats; }

 protected:
  void RecordSend(size_t bytes) {
    if (stats_ == nullptr) return;
    stats_->frames_sent.fetch_add(1, std::memory_order_relaxed);
    stats_->bytes_sent.fetch_add(bytes, std::memory_order_relaxed);
  }
  void RecordRecv(size_t bytes) {
    if (stats_ == nullptr) return;
    stats_->frames_received.fetch_add(1, std::memory_order_relaxed);
    stats_->bytes_received.fetch_add(bytes, std::memory_order_relaxed);
  }

  ChannelStats* stats_ = nullptr;
};

/// Connect-retry policy for the real-socket transports, shaped from the
/// same sim::FaultConfig fields PR-2's transport retries use —
/// `max_retries` attempts after the first, exponential backoff starting
/// at `backoff_seconds` (floored at 1ms: simulated backoffs are
/// microseconds, real sockets need real waits).
struct RetryPolicy {
  uint32_t max_retries = 3;
  double backoff_seconds = 200e-6;

  static RetryPolicy FromFaultConfig(const sim::FaultConfig& fault) {
    RetryPolicy policy;
    policy.max_retries = fault.max_retries;
    policy.backoff_seconds = fault.retry_backoff_seconds;
    return policy;
  }
};

/// Kind byte of one Messenger wire frame (DESIGN.md §15).
enum class FrameKind : uint8_t {
  /// Sequenced application payload.
  kData = 1,
  /// Cumulative acknowledgement: the seq field carries the highest
  /// in-order sequence the receiver has delivered. Unsequenced.
  kAck = 2,
  /// Liveness beacon from the worker's heartbeat thread. Unsequenced,
  /// never acked, swallowed by the receiving Messenger (it only
  /// refreshes the activity clock the coordinator's watchdog reads).
  kHeartbeat = 3,
};

/// Fixed per-frame overhead: [u8 kind][u64 seq] header + [u32 crc]
/// trailer. Any shorter frame is corrupt by construction.
constexpr size_t kFrameOverheadBytes = 13;

/// Sequenced, integrity-checked messaging over a Channel.
///
/// Every frame is [u8 kind][u64 seq le][payload][u32 crc32 le], the
/// CRC covering kind..payload — so a corrupted or truncated frame
/// (e.g. a mid-frame connection reset surfacing as a short frame) is
/// detected on receive, never delivered. The receiver drops any data
/// frame whose sequence it has already delivered: real sockets can
/// present duplicates (a retried send whose first copy did arrive);
/// dropping them here is the transport-level analogue of the parameter
/// server's per-worker push-sequence guard, and makes RPC delivery
/// exactly-once from the dispatcher's point of view.
///
/// With EnableReliable the Messenger additionally *heals* lost or
/// corrupted frames (DESIGN.md §15): the receiver delivers strictly
/// in-order and acks cumulatively; the sender keeps unacked data
/// frames and retransmits them all (go-back-N) on an exponential
/// backoff timer with seeded jitter, giving up — and closing the
/// channel — after `max_attempts` unanswered bursts. Retransmits are
/// pumped from Send/Recv/SendHeartbeat, so a blocked RPC still makes
/// progress. Without it (the fault-free production default) the wire
/// carries no acks and the hot path stays a single Send per message;
/// a CRC failure then surfaces as RecvStatus::kCorrupt.
///
/// Threading: Send/SendWithSeq/Recv are single-caller (the process's
/// command/scheduling thread); SendHeartbeat may race them from the
/// heartbeat thread. All shared state is guarded by an internal send
/// mutex; the attached MetricRegistry (not thread-safe) is only ever
/// touched from the main thread's Send/Recv paths.
class Messenger {
 public:
  struct ReliableConfig {
    bool enabled = false;
    /// Seeds the retransmit-backoff jitter (sim::FaultPlan::HashUnit).
    uint64_t seed = 42;
    /// First retransmit fires this long after the original send;
    /// doubles per unanswered burst up to max_backoff_ms.
    int base_backoff_ms = 40;
    int max_backoff_ms = 1000;
    /// Unanswered retransmit bursts before the link is declared broken.
    int max_attempts = 15;
  };

  explicit Messenger(Channel* channel);

  bool Send(std::string_view payload);

  /// Test hook: send under an explicit sequence number (re-sending a
  /// consumed one injects a duplicate the receiver must drop).
  /// Non-reliable mode only — the reliable receiver's in-order window
  /// assumes the sender numbers contiguously.
  bool SendWithSeq(uint64_t seq, std::string_view payload);

  RecvStatus Recv(std::string* payload, int timeout_ms);

  /// Recv with a typed verdict: kTimeout becomes DeadlineExceeded (the
  /// per-RPC deadline contract), kCorrupt becomes Corruption, kClosed
  /// becomes IoError.
  Status RecvOrDeadline(std::string* payload, int deadline_ms);

  /// Emits one liveness beacon (and pumps due retransmits). Safe to
  /// call from a dedicated heartbeat thread concurrently with
  /// Send/Recv on the main thread.
  bool SendHeartbeat();

  /// Milliseconds since the last valid frame (any kind) arrived — the
  /// coordinator watchdog's liveness signal. TouchActivity resets the
  /// clock (called when a turn starts, so idle time between turns
  /// never counts against the worker).
  int64_t MillisSinceActivity() const {
    return SteadyNowMs() - last_activity_ms_.load(std::memory_order_relaxed);
  }
  void TouchActivity() {
    last_activity_ms_.store(SteadyNowMs(), std::memory_order_relaxed);
  }

  /// Turns on the loss-healing retransmit layer. Must be called before
  /// any traffic, on both endpoints of the link.
  void EnableReliable(const ReliableConfig& config) { reliable_ = config; }
  bool reliable() const { return reliable_.enabled; }

  /// Attaches the fault/heartbeat counter sink (outlives the
  /// messenger; shared with the link's FaultChannel).
  void set_fault_stats(NetFaultStats* stats) { fault_stats_ = stats; }

  /// Enables transport profiling (DESIGN.md §14) into `metrics`, which
  /// must outlive the messenger and be touched only from the thread
  /// that calls Send/Recv: per-frame payload sizes land in the
  /// net.frame.bytes.<transport> histogram and frame/byte counters;
  /// blocking round-trip times fed via ObserveRpcLatency land in
  /// net.rpc.latency_us.<transport>. Heartbeat/retransmit traffic is
  /// deliberately excluded (it may run on the heartbeat thread) and is
  /// counted in NetFaultStats instead.
  void EnableMetrics(MetricRegistry* metrics, std::string_view transport);
  bool MetricsEnabled() const { return metrics_ != nullptr; }
  void ObserveRpcLatency(double micros) {
    if (metrics_ != nullptr) metrics_->Observe(rpc_hist_, micros);
  }

  Channel* channel() { return channel_; }
  uint64_t last_sent_seq() const { return next_seq_; }

 private:
  struct UnackedFrame {
    uint64_t seq = 0;
    std::string frame;
  };

  bool SendDataLocked(uint64_t seq, std::string_view payload);
  /// Retransmits every unacked frame when the backoff timer is due;
  /// declares the link broken after max_attempts unanswered bursts.
  void PumpRetransmitsLocked(int64_t now_ms);
  void HandleAckLocked(uint64_t acked_seq, int64_t now_ms);
  void SendAckLocked(uint64_t delivered_seq);
  int64_t BackoffMs(int attempt, uint64_t seq) const;

  Channel* channel_;
  ReliableConfig reliable_;
  NetFaultStats* fault_stats_ = nullptr;

  /// Guards next_seq_, unacked_, the retransmit timer, broken_, and
  /// every channel_->Send (main thread and heartbeat thread share the
  /// send path). channel_->Recv runs outside it (single receiver).
  std::mutex send_mu_;
  uint64_t next_seq_ = 0;
  std::deque<UnackedFrame> unacked_;
  int attempt_ = 0;
  int64_t next_retransmit_ms_ = 0;
  uint64_t heartbeat_seq_ = 0;
  bool broken_ = false;

  /// Receive-side state (receiver thread only).
  uint64_t delivered_seq_ = 0;

  std::atomic<int64_t> last_activity_ms_;

  MetricRegistry* metrics_ = nullptr;
  std::string frame_hist_;
  std::string rpc_hist_;
};

}  // namespace hetkg::net

#endif  // HETKG_NET_CHANNEL_H_
