#include "net/tcp_channel.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <thread>

namespace hetkg::net {

namespace {

/// Mid-frame progress deadline (see Channel contract): once a frame's
/// length prefix arrived, the body must keep flowing or the stream
/// reads as closed.
constexpr int kMidFrameStallMs = 60'000;

/// Writes all of `n` bytes; false on any error (EPIPE included —
/// MSG_NOSIGNAL keeps a dead peer from killing the process).
bool SendAll(int fd, const char* data, size_t n) {
  size_t sent = 0;
  while (sent < n) {
    const ssize_t rc = send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(rc);
  }
  return true;
}

enum class ReadResult { kOk, kTimeout, kClosed };

/// Reads exactly `n` bytes. `timeout_ms` applies to the first byte
/// only; the remainder runs under the mid-frame deadline.
ReadResult ReadAll(int fd, char* data, size_t n, int timeout_ms) {
  size_t got = 0;
  while (got < n) {
    pollfd pfd{fd, POLLIN, 0};
    const int wait_ms =
        (got == 0 && timeout_ms >= 0) ? timeout_ms : kMidFrameStallMs;
    const int prc = poll(&pfd, 1, wait_ms);
    if (prc < 0) {
      if (errno == EINTR) continue;
      return ReadResult::kClosed;
    }
    if (prc == 0) {
      return (got == 0 && timeout_ms >= 0) ? ReadResult::kTimeout
                                           : ReadResult::kClosed;
    }
    const ssize_t rc = recv(fd, data + got, n - got, 0);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return ReadResult::kClosed;
    }
    if (rc == 0) return ReadResult::kClosed;  // Orderly shutdown / death.
    got += static_cast<size_t>(rc);
  }
  return ReadResult::kOk;
}

}  // namespace

TcpChannel::TcpChannel(int fd) : fd_(fd) {
  const int one = 1;
  // RPC turns are latency-bound request/reply pairs; never Nagle them.
  setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

TcpChannel::~TcpChannel() {
  if (fd_ >= 0) close(fd_);
}

bool TcpChannel::Send(std::string_view frame) {
  if (closed_.load(std::memory_order_acquire) ||
      frame.size() > kMaxFrameBytes) {
    return false;
  }
  uint32_t len = static_cast<uint32_t>(frame.size());
  char header[4];
  std::memcpy(header, &len, 4);
  if (!SendAll(fd_, header, 4)) return false;
  if (len != 0 && !SendAll(fd_, frame.data(), len)) return false;
  RecordSend(frame.size());
  return true;
}

RecvStatus TcpChannel::Recv(std::string* frame, int timeout_ms) {
  if (closed_.load(std::memory_order_acquire)) return RecvStatus::kClosed;
  char header[4];
  switch (ReadAll(fd_, header, 4, timeout_ms)) {
    case ReadResult::kTimeout:
      return RecvStatus::kTimeout;
    case ReadResult::kClosed:
      return RecvStatus::kClosed;
    case ReadResult::kOk:
      break;
  }
  uint32_t len = 0;
  std::memcpy(&len, header, 4);
  if (len > kMaxFrameBytes) return RecvStatus::kClosed;  // Corrupt stream.
  frame->resize(len);
  if (len != 0 &&
      ReadAll(fd_, frame->data(), len, -1) != ReadResult::kOk) {
    return RecvStatus::kClosed;
  }
  RecordRecv(len);
  return RecvStatus::kOk;
}

void TcpChannel::Close() {
  // shutdown() (not close()) so a Recv blocked on another thread wakes
  // with EOF instead of racing a reused descriptor number.
  closed_.store(true, std::memory_order_release);
  shutdown(fd_, SHUT_RDWR);
}

Result<std::unique_ptr<TcpListener>> TcpListener::Create(uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal("socket() failed: " +
                            std::string(strerror(errno)));
  }
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string err = strerror(errno);
    close(fd);
    return Status::IoError("bind(port " + std::to_string(port) +
                           ") failed: " + err);
  }
  if (listen(fd, 16) < 0) {
    const std::string err = strerror(errno);
    close(fd);
    return Status::IoError("listen() failed: " + err);
  }
  socklen_t addr_len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) < 0) {
    const std::string err = strerror(errno);
    close(fd);
    return Status::Internal("getsockname() failed: " + err);
  }
  return std::unique_ptr<TcpListener>(
      new TcpListener(fd, ntohs(addr.sin_port)));
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) close(fd_);
}

Result<std::unique_ptr<TcpChannel>> TcpListener::Accept(int timeout_ms) {
  pollfd pfd{fd_, POLLIN, 0};
  for (;;) {
    const int prc = poll(&pfd, 1, timeout_ms);
    if (prc < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("poll(accept) failed: " +
                             std::string(strerror(errno)));
    }
    if (prc == 0) return Status::NotFound("accept timed out");
    break;
  }
  const int fd = accept(fd_, nullptr, nullptr);
  if (fd < 0) {
    return Status::IoError("accept() failed: " +
                           std::string(strerror(errno)));
  }
  return std::make_unique<TcpChannel>(fd);
}

Result<std::unique_ptr<TcpChannel>> TcpConnect(const std::string& host,
                                               uint16_t port,
                                               const RetryPolicy& retry) {
  // Simulated backoffs are microseconds; real connect retries need a
  // real floor so a not-yet-listening coordinator has time to arrive.
  double backoff_s = std::max(retry.backoff_seconds, 1e-3);
  std::string last_error;
  for (uint32_t attempt = 0; attempt <= retry.max_retries; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(backoff_s));
      backoff_s *= 2.0;
    }
    const int fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      last_error = std::string("socket() failed: ") + strerror(errno);
      continue;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      close(fd);
      return Status::InvalidArgument("not an IPv4 address: " + host);
    }
    if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      return std::make_unique<TcpChannel>(fd);
    }
    last_error = std::string("connect() failed: ") + strerror(errno);
    close(fd);
  }
  return Status::IoError("connect to " + host + ":" + std::to_string(port) +
                         " exhausted " + std::to_string(retry.max_retries) +
                         " retries: " + last_error);
}

}  // namespace hetkg::net
