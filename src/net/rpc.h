#ifndef HETKG_NET_RPC_H_
#define HETKG_NET_RPC_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/serialize.h"

namespace hetkg::net {

/// RPC message vocabulary of the process runtime (DESIGN.md §13). One
/// Messenger connects the coordinator to each worker; every payload is
/// a 1-byte type followed by ByteWriter-encoded fields. The protocol
/// is strictly turn-based: the coordinator issues one command, then
/// services the worker's stream of backend calls (in the worker's
/// program order — which IS the sim runtime's accounting order) until
/// the matching completion message arrives.
enum class MsgType : uint8_t {
  // Coordinator → worker commands and replies.
  kRunStep = 1,   // U64 iter — run one training step.
  kEpochEnd,      // Flush write-back gradients, report hit counters.
  kSyncState,     // Serialize and ship the full worker state.
  kLoadState,     // raw SaveWorkerState blob — overwrite worker state.
  kShutdown,      // Orderly exit.
  kPullReply,     // U64 n_failed, U32 failed[n], raw floats (all keys).
  kReadRowReply,  // raw floats (one row).
  // Cross-process observability (DESIGN.md §14).
  kStartObs,    // U8 trace_on, U64 ring_capacity, U8 flight_kind
                // (0 none / 1 inherited shm / 2 spill file),
                // U64 flight_slots, Str flight_path, Str transport —
                // start the worker's obs session.
  kClockSync,   // empty — reply kClockSyncReply with the worker clock.
  kShipObs,     // empty — reply kObsData with drained trace + metrics.

  // Worker → coordinator: backend calls and completions.
  kHello = 32,   // U32 machine — standalone TCP worker introduction.
  kPull,         // U64 n, U64 keys[n] — ParameterServer::PullBatch.
  kPush,         // U64 n, U64 keys[n], raw floats — PushGradBatch.
  kReadRow,      // U64 key — degraded read (PsBackend::ReadRow).
  kCharge,       // U64 flops — ClusterSim::RecordCompute.
  kMetric,       // Str name, U64 delta — server metric increment.
  kStepDone,     // F64 loss_sum, U64 pair_count.
  kEpochDone,    // U64 hits, U64 misses.
  kWorkerState,  // raw SaveWorkerState blob.
  kBye,          // Acknowledges kShutdown.
  kClockSyncReply,  // U64 worker Tracer::NowMicros().
  kObsData,         // U64 trace_len, raw Tracer shipment batch,
                    // U64 n_gauges, {Str name, F64 value}[n],
                    // MetricRegistry::SaveState bytes (cumulative —
                    // the coordinator replaces, never accumulates).
                    // Sent in reply to kShipObs and unsolicited right
                    // before kBye, so the kShutdown drain gets the
                    // final shipment.
};

inline ByteWriter RpcMessage(MsgType type) {
  ByteWriter w;
  w.U8(static_cast<uint8_t>(type));
  return w;
}

/// Splits a received payload into its type byte and field reader.
/// Returns false (type undisturbed) on an empty payload.
inline bool RpcOpen(std::string_view payload, MsgType* type,
                    ByteReader* reader) {
  if (payload.empty()) return false;
  *type = static_cast<MsgType>(static_cast<uint8_t>(payload[0]));
  *reader = ByteReader(payload.data() + 1, payload.size() - 1);
  return true;
}

}  // namespace hetkg::net

#endif  // HETKG_NET_RPC_H_
