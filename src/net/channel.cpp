#include "net/channel.h"

#include <algorithm>
#include <chrono>

#include "common/crc32.h"
#include "obs/trace.h"

namespace hetkg::net {

namespace {

/// Salt of the retransmit-backoff jitter decisions (counter-mode hash,
/// same family as sim/transport.cpp's drop/duplicate/delay salts).
constexpr uint64_t kJitterSalt = 0xBACCULL;

std::string EncodeFrame(FrameKind kind, uint64_t seq,
                        std::string_view payload) {
  std::string frame;
  frame.resize(kFrameOverheadBytes + payload.size());
  frame[0] = static_cast<char>(kind);
  std::memcpy(frame.data() + 1, &seq, 8);
  if (!payload.empty()) {
    std::memcpy(frame.data() + 9, payload.data(), payload.size());
  }
  const uint32_t crc = Crc32(frame.data(), 9 + payload.size());
  std::memcpy(frame.data() + 9 + payload.size(), &crc, 4);
  return frame;
}

/// Splits a wire frame into its parts; false on a short frame, a CRC
/// mismatch, or an unknown kind byte (all indistinguishable from
/// corruption — the CRC covers the kind).
bool DecodeFrame(const std::string& frame, FrameKind* kind, uint64_t* seq,
                 std::string_view* payload) {
  if (frame.size() < kFrameOverheadBytes) return false;
  uint32_t stated = 0;
  std::memcpy(&stated, frame.data() + frame.size() - 4, 4);
  if (Crc32(frame.data(), frame.size() - 4) != stated) return false;
  const uint8_t k = static_cast<uint8_t>(frame[0]);
  if (k < static_cast<uint8_t>(FrameKind::kData) ||
      k > static_cast<uint8_t>(FrameKind::kHeartbeat)) {
    return false;
  }
  *kind = static_cast<FrameKind>(k);
  std::memcpy(seq, frame.data() + 1, 8);
  *payload = std::string_view(frame.data() + 9,
                              frame.size() - kFrameOverheadBytes);
  return true;
}

}  // namespace

int64_t SteadyNowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void FoldFaultStats(const NetFaultStats& stats, NetFaultCounts* last,
                    MetricRegistry* metrics) {
  const auto fold = [&](const std::atomic<uint64_t>& counter,
                        uint64_t NetFaultCounts::* watermark,
                        const char* name) {
    const uint64_t total = counter.load(std::memory_order_relaxed);
    const uint64_t base = last != nullptr ? (*last).*watermark : 0;
    if (total > base) {
      metrics->Increment(name, total - base);
      if (last != nullptr) (*last).*watermark = total;
    }
  };
  fold(stats.injected_drops, &NetFaultCounts::injected_drops,
       metric::kNetFaultInjectedDrops);
  fold(stats.injected_duplicates, &NetFaultCounts::injected_duplicates,
       metric::kNetFaultInjectedDuplicates);
  fold(stats.injected_delays, &NetFaultCounts::injected_delays,
       metric::kNetFaultInjectedDelays);
  fold(stats.injected_corruptions, &NetFaultCounts::injected_corruptions,
       metric::kNetFaultInjectedCorruptions);
  fold(stats.injected_resets, &NetFaultCounts::injected_resets,
       metric::kNetFaultInjectedResets);
  fold(stats.crc_errors, &NetFaultCounts::crc_errors,
       metric::kNetFaultCrcErrors);
  fold(stats.retransmits, &NetFaultCounts::retransmits,
       metric::kNetFaultRetransmits);
  fold(stats.duplicate_frames_dropped,
       &NetFaultCounts::duplicate_frames_dropped,
       metric::kNetFaultDuplicatesDropped);
  fold(stats.heartbeats_received, &NetFaultCounts::heartbeats_received,
       metric::kWatchdogHeartbeats);
}

Messenger::Messenger(Channel* channel)
    : channel_(channel), last_activity_ms_(SteadyNowMs()) {}

void Messenger::EnableMetrics(MetricRegistry* metrics,
                              std::string_view transport) {
  metrics_ = metrics;
  frame_hist_ =
      std::string(metric::kNetFrameBytes) + "." + std::string(transport);
  rpc_hist_ =
      std::string(metric::kNetRpcLatency) + "." + std::string(transport);
}

int64_t Messenger::BackoffMs(int attempt, uint64_t seq) const {
  const int64_t doubled = static_cast<int64_t>(reliable_.base_backoff_ms)
                          << std::min(attempt, 12);
  const int64_t base =
      std::min<int64_t>(doubled, reliable_.max_backoff_ms);
  // Seeded jitter up to +50% of the backoff, a pure function of
  // (seed, seq, attempt) so fault scenarios stay reproducible.
  const double unit = sim::FaultPlan::HashUnit(
      reliable_.seed, (seq << 8) ^ static_cast<uint64_t>(attempt),
      kJitterSalt);
  return base + static_cast<int64_t>(unit * 0.5 * static_cast<double>(base));
}

void Messenger::PumpRetransmitsLocked(int64_t now_ms) {
  if (!reliable_.enabled || broken_ || unacked_.empty()) return;
  if (now_ms < next_retransmit_ms_) return;
  if (attempt_ >= reliable_.max_attempts) {
    // The bounded part of "bounded retransmit": a peer that never acks
    // is unreachable, and the link fails closed instead of retrying
    // forever.
    broken_ = true;
    channel_->Close();
    return;
  }
  ++attempt_;
  for (const UnackedFrame& u : unacked_) {
    if (!channel_->Send(u.frame)) {
      broken_ = true;
      return;
    }
    if (fault_stats_ != nullptr) {
      fault_stats_->retransmits.fetch_add(1, std::memory_order_relaxed);
    }
  }
  next_retransmit_ms_ = now_ms + BackoffMs(attempt_, unacked_.front().seq);
}

void Messenger::HandleAckLocked(uint64_t acked_seq, int64_t now_ms) {
  if (!reliable_.enabled) return;
  bool progressed = false;
  while (!unacked_.empty() && unacked_.front().seq <= acked_seq) {
    unacked_.pop_front();
    progressed = true;
  }
  if (progressed) {
    attempt_ = 0;
    if (!unacked_.empty()) {
      next_retransmit_ms_ =
          now_ms + BackoffMs(0, unacked_.front().seq);
    }
  }
}

void Messenger::SendAckLocked(uint64_t delivered_seq) {
  if (broken_) return;
  channel_->Send(EncodeFrame(FrameKind::kAck, delivered_seq, {}));
}

bool Messenger::SendDataLocked(uint64_t seq, std::string_view payload) {
  if (broken_) return false;
  const int64_t now = SteadyNowMs();
  PumpRetransmitsLocked(now);
  if (broken_) return false;
  std::string frame = EncodeFrame(FrameKind::kData, seq, payload);
  const bool sent = channel_->Send(frame);
  if (sent && reliable_.enabled) {
    if (unacked_.empty()) {
      attempt_ = 0;
      next_retransmit_ms_ = now + BackoffMs(0, seq);
    }
    unacked_.push_back(UnackedFrame{seq, std::move(frame)});
  }
  if (sent && metrics_ != nullptr) {
    // Note `frame` may be moved-out here; account the known size.
    const size_t wire_bytes = kFrameOverheadBytes + payload.size();
    metrics_->Increment(metric::kNetFramesSent);
    metrics_->Increment(metric::kNetBytesSent, wire_bytes);
    metrics_->Observe(frame_hist_, static_cast<double>(wire_bytes));
  }
  return sent;
}

bool Messenger::Send(std::string_view payload) {
  std::lock_guard<std::mutex> lock(send_mu_);
  return SendDataLocked(++next_seq_, payload);
}

bool Messenger::SendWithSeq(uint64_t seq, std::string_view payload) {
  std::lock_guard<std::mutex> lock(send_mu_);
  return SendDataLocked(seq, payload);
}

bool Messenger::SendHeartbeat() {
  std::lock_guard<std::mutex> lock(send_mu_);
  if (broken_) return false;
  PumpRetransmitsLocked(SteadyNowMs());
  if (broken_) return false;
  const bool sent =
      channel_->Send(EncodeFrame(FrameKind::kHeartbeat, ++heartbeat_seq_, {}));
  if (sent && fault_stats_ != nullptr) {
    fault_stats_->heartbeats_sent.fetch_add(1, std::memory_order_relaxed);
  }
  return sent;
}

RecvStatus Messenger::Recv(std::string* payload, int timeout_ms) {
  const int64_t deadline =
      timeout_ms < 0 ? -1 : SteadyNowMs() + timeout_ms;
  for (;;) {
    // Window this wait so due retransmits fire even while the caller
    // blocks here indefinitely waiting for the reply they unblock.
    int slice = -1;
    {
      std::lock_guard<std::mutex> lock(send_mu_);
      PumpRetransmitsLocked(SteadyNowMs());
      if (broken_) return RecvStatus::kClosed;
      if (reliable_.enabled && !unacked_.empty()) {
        slice = static_cast<int>(std::clamp<int64_t>(
            next_retransmit_ms_ - SteadyNowMs(), 1, 100));
      }
    }
    if (deadline >= 0) {
      const int64_t remain = deadline - SteadyNowMs();
      if (remain <= 0) return RecvStatus::kTimeout;
      slice = slice < 0 ? static_cast<int>(remain)
                        : static_cast<int>(std::min<int64_t>(slice, remain));
    }
    std::string frame;
    const RecvStatus status = channel_->Recv(&frame, slice);
    if (status == RecvStatus::kClosed) return status;
    if (status == RecvStatus::kTimeout) {
      if (deadline >= 0 && SteadyNowMs() >= deadline) {
        return RecvStatus::kTimeout;
      }
      continue;  // Retransmit-window expiry, not the caller's timeout.
    }
    if (metrics_ != nullptr) {
      metrics_->Increment(metric::kNetFramesReceived);
      metrics_->Increment(metric::kNetBytesReceived, frame.size());
    }
    FrameKind kind;
    uint64_t seq = 0;
    std::string_view body;
    if (!DecodeFrame(frame, &kind, &seq, &body)) {
      if (fault_stats_ != nullptr) {
        fault_stats_->crc_errors.fetch_add(1, std::memory_order_relaxed);
      }
      obs::Tracer::Instant("net.fault.crc_error", "net", "bytes",
                           static_cast<double>(frame.size()));
      // With the retransmit layer on, a corrupted frame is just a lost
      // frame: the sender's timer re-sends it intact. Without it the
      // caller gets the typed verdict.
      if (reliable_.enabled) continue;
      return RecvStatus::kCorrupt;
    }
    TouchActivity();
    if (kind == FrameKind::kAck) {
      std::lock_guard<std::mutex> lock(send_mu_);
      HandleAckLocked(seq, SteadyNowMs());
      continue;
    }
    if (kind == FrameKind::kHeartbeat) {
      if (fault_stats_ != nullptr) {
        fault_stats_->heartbeats_received.fetch_add(
            1, std::memory_order_relaxed);
      }
      continue;
    }
    // Data frame.
    if (!reliable_.enabled) {
      if (seq <= delivered_seq_) {
        if (fault_stats_ != nullptr) {
          fault_stats_->duplicate_frames_dropped.fetch_add(
              1, std::memory_order_relaxed);
        }
        continue;  // Duplicate: drop silently.
      }
      delivered_seq_ = seq;
      payload->assign(body.data(), body.size());
      return RecvStatus::kOk;
    }
    if (seq == delivered_seq_ + 1) {
      delivered_seq_ = seq;
      std::lock_guard<std::mutex> lock(send_mu_);
      SendAckLocked(delivered_seq_);
      payload->assign(body.data(), body.size());
      return RecvStatus::kOk;
    }
    // Duplicate (<= delivered) or gap (an earlier frame was lost and
    // this one raced ahead): drop, and re-ack the delivery point so
    // the sender converges with a full go-back-N burst.
    if (seq <= delivered_seq_ && fault_stats_ != nullptr) {
      fault_stats_->duplicate_frames_dropped.fetch_add(
          1, std::memory_order_relaxed);
    }
    std::lock_guard<std::mutex> lock(send_mu_);
    SendAckLocked(delivered_seq_);
  }
}

Status Messenger::RecvOrDeadline(std::string* payload, int deadline_ms) {
  switch (Recv(payload, deadline_ms)) {
    case RecvStatus::kOk:
      return Status::OK();
    case RecvStatus::kTimeout:
      return Status::DeadlineExceeded("no frame within " +
                                      std::to_string(deadline_ms) + " ms");
    case RecvStatus::kCorrupt:
      return Status::Corruption("frame failed CRC-32 verification");
    case RecvStatus::kClosed:
      break;
  }
  return Status::IoError("channel closed");
}

}  // namespace hetkg::net
