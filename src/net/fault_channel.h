#ifndef HETKG_NET_FAULT_CHANNEL_H_
#define HETKG_NET_FAULT_CHANNEL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "net/channel.h"

namespace hetkg::net {

/// Knobs of the real-transport fault model (DESIGN.md §15): the PR-2
/// seeded counter-mode plan, ported from the simulated wire to real
/// shm/TCP frames. Every decision is a pure hash of
/// (seed ^ link_salt, send tick, fault kind) — one logical clock per
/// channel direction, one tick per Send — so a fault scenario replays
/// identically for a given topology, independent of wall-clock timing.
struct WireFaultConfig {
  /// Master switch; also arms the Messenger's retransmit layer on
  /// every link (faults without healing would just kill the run).
  bool enabled = false;
  uint64_t seed = 42;
  /// Probability one sent frame is silently swallowed.
  double drop_prob = 0.0;
  /// Probability one sent frame crosses the wire twice.
  double duplicate_prob = 0.0;
  /// Probability one sent frame is late by `delay_ms` (a real sleep —
  /// proc wall-clock is not simulated).
  double delay_prob = 0.0;
  /// Probability one byte of a sent frame is flipped (the CRC-32
  /// trailer must catch it).
  double corrupt_prob = 0.0;
  /// Probability a mid-frame connection reset truncates a sent frame.
  /// The frame-based Channel contract delivers whole-frames-or-closed,
  /// so the faithful frame-level analogue is the receiver seeing the
  /// prefix that made it out before the reset — which the length/CRC
  /// check rejects and the retransmit layer heals.
  double reset_prob = 0.0;
  int delay_ms = 1;
  /// Scripted faults for deterministic tests: fire on exactly these
  /// send ticks (0-based, per channel direction), in addition to the
  /// probabilistic plan.
  std::vector<uint64_t> drop_ticks;
  std::vector<uint64_t> duplicate_ticks;
  std::vector<uint64_t> corrupt_ticks;
  std::vector<uint64_t> reset_ticks;

  /// True when any fault can actually fire (the decorator is only
  /// installed then, keeping the fault-free hot path undecorated).
  bool Armed() const {
    return enabled &&
           (drop_prob > 0.0 || duplicate_prob > 0.0 || delay_prob > 0.0 ||
            corrupt_prob > 0.0 || reset_prob > 0.0 || !drop_ticks.empty() ||
            !duplicate_ticks.empty() || !corrupt_ticks.empty() ||
            !reset_ticks.empty());
  }
};

/// Shapes the Messenger's retransmit layer from the wire fault config:
/// same master switch, same seed (for the backoff jitter).
Messenger::ReliableConfig ReliableFromWireFaults(const WireFaultConfig& fault);

/// Channel decorator injecting wire faults on the send side
/// (DESIGN.md §15). Wrap both endpoints of a link to fault both
/// directions. At most one fault fires per sent frame, decided in
/// fixed precedence — drop, reset, corrupt, then delay/duplicate
/// (which compose with delivery). Receives pass through untouched.
///
/// Sits *below* the Messenger: faults mangle fully framed wire bytes
/// (CRC trailer included), so the integrity check above genuinely
/// exercises detection, and the raw transport underneath still sees
/// well-formed [len][payload] frames.
class FaultChannel final : public Channel {
 public:
  /// `inner` must outlive the decorator. `link_salt` diversifies the
  /// plan across links/directions sharing one seed.
  FaultChannel(Channel* inner, const WireFaultConfig& config,
               uint64_t link_salt);

  bool Send(std::string_view frame) override;
  RecvStatus Recv(std::string* frame, int timeout_ms) override;
  void Close() override;

  void set_fault_stats(NetFaultStats* stats) { fault_stats_ = stats; }
  uint64_t send_ticks() const { return tick_; }

 private:
  double Unit(uint64_t tick, uint64_t salt) const;
  void Count(std::atomic<uint64_t> NetFaultStats::* counter);

  Channel* inner_;
  const WireFaultConfig config_;
  const uint64_t link_salt_;
  /// Logical send clock; callers serialize Send (the Messenger's send
  /// mutex in the proc runtime), so no atomics needed.
  uint64_t tick_ = 0;
  NetFaultStats* fault_stats_ = nullptr;
};

}  // namespace hetkg::net

#endif  // HETKG_NET_FAULT_CHANNEL_H_
