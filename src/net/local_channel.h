#ifndef HETKG_NET_LOCAL_CHANNEL_H_
#define HETKG_NET_LOCAL_CHANNEL_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "net/channel.h"

namespace hetkg::net {

/// In-process Channel pair: two mutex-guarded frame queues, one per
/// direction. The conformance baseline every real transport is tested
/// against, and the endpoint for same-process worker threads in tests.
class LocalChannel final : public Channel {
 public:
  static std::pair<std::unique_ptr<LocalChannel>,
                   std::unique_ptr<LocalChannel>>
  CreatePair() {
    auto shared = std::make_shared<Shared>();
    std::unique_ptr<LocalChannel> a(new LocalChannel(shared, 0));
    std::unique_ptr<LocalChannel> b(new LocalChannel(shared, 1));
    return {std::move(a), std::move(b)};
  }

  bool Send(std::string_view frame) override {
    if (frame.size() > kMaxFrameBytes) return false;
    Shared::Direction& dir = shared_->dirs[1 - side_];
    std::lock_guard<std::mutex> lock(shared_->mu);
    if (shared_->closed) return false;
    dir.frames.emplace_back(frame);
    shared_->cv.notify_all();
    return true;
  }

  RecvStatus Recv(std::string* frame, int timeout_ms) override {
    Shared::Direction& dir = shared_->dirs[side_];
    std::unique_lock<std::mutex> lock(shared_->mu);
    auto ready = [&] { return !dir.frames.empty() || shared_->closed; };
    if (timeout_ms < 0) {
      shared_->cv.wait(lock, ready);
    } else if (!shared_->cv.wait_for(
                   lock, std::chrono::milliseconds(timeout_ms), ready)) {
      return RecvStatus::kTimeout;
    }
    if (dir.frames.empty()) return RecvStatus::kClosed;
    *frame = std::move(dir.frames.front());
    dir.frames.pop_front();
    return RecvStatus::kOk;
  }

  void Close() override {
    std::lock_guard<std::mutex> lock(shared_->mu);
    shared_->closed = true;
    shared_->cv.notify_all();
  }

 private:
  struct Shared {
    struct Direction {
      std::deque<std::string> frames;
    };
    std::mutex mu;
    std::condition_variable cv;
    Direction dirs[2];
    bool closed = false;
  };

  LocalChannel(std::shared_ptr<Shared> shared, int side)
      : shared_(std::move(shared)), side_(side) {}

  std::shared_ptr<Shared> shared_;
  const int side_;
};

}  // namespace hetkg::net

#endif  // HETKG_NET_LOCAL_CHANNEL_H_
