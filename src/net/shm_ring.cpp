#include "net/shm_ring.h"

#include <errno.h>
#include <pthread.h>
#include <string.h>
#include <sys/mman.h>
#include <time.h>

#include <algorithm>
#include <cstring>

namespace hetkg::net {

namespace {

/// Internal deadline for mid-frame progress. Recv's caller timeout
/// applies only at a frame boundary; once a header exists, the reader
/// insists on the body but will not hang forever on a peer that
/// stalled mid-frame (it reads as kClosed after this long).
constexpr int kMidFrameStallMs = 60'000;

timespec DeadlineAfterMs(int ms) {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  ts.tv_sec += ms / 1000;
  ts.tv_nsec += static_cast<long>(ms % 1000) * 1'000'000L;
  if (ts.tv_nsec >= 1'000'000'000L) {
    ts.tv_sec += 1;
    ts.tv_nsec -= 1'000'000'000L;
  }
  return ts;
}

}  // namespace

/// Control block + buffer of one ring direction, living in the shared
/// mapping. All cursor state is mutex-guarded; the cursors are
/// monotonically increasing absolute byte counts (fill = tail - head).
struct Ring {
  pthread_mutex_t mu;
  pthread_cond_t readable;
  pthread_cond_t writable;
  uint64_t head;    // Consumed bytes (reader cursor).
  uint64_t tail;    // Produced bytes (writer cursor).
  uint32_t closed;  // Sticky; set by Close() or on EOWNERDEAD.
  uint64_t capacity;
  char data[];  // `capacity` bytes follow in the mapping.

  /// Robust lock: a peer that died holding the mutex reads as closed.
  /// Returns false when the ring is unusable (peer dead, state made
  /// consistent and marked closed).
  bool Lock() {
    const int rc = pthread_mutex_lock(&mu);
    if (rc == 0) return true;
    if (rc == EOWNERDEAD) {
      pthread_mutex_consistent(&mu);
      closed = 1;
      pthread_cond_broadcast(&readable);
      pthread_cond_broadcast(&writable);
      return true;  // Locked; caller observes closed.
    }
    return false;  // ENOTRECOVERABLE or corrupt: treat as closed.
  }

  void Unlock() { pthread_mutex_unlock(&mu); }

  void CopyIn(uint64_t at, const char* src, uint64_t n) {
    const uint64_t pos = at % capacity;
    const uint64_t first = std::min(n, capacity - pos);
    std::memcpy(data + pos, src, first);
    if (n > first) std::memcpy(data, src + first, n - first);
  }

  void CopyOut(uint64_t at, char* dst, uint64_t n) {
    const uint64_t pos = at % capacity;
    const uint64_t first = std::min(n, capacity - pos);
    std::memcpy(dst, data + pos, first);
    if (n > first) std::memcpy(dst + first, data, n - first);
  }
};

class ShmRegion {
 public:
  static Result<std::shared_ptr<ShmRegion>> Create(size_t ring_bytes) {
    if (ring_bytes == 0) {
      return Status::InvalidArgument("shm ring capacity must be positive");
    }
    const size_t ring_size = sizeof(Ring) + ring_bytes;
    const size_t total = 2 * ring_size;
    void* mem = mmap(nullptr, total, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_ANONYMOUS, -1, 0);
    if (mem == MAP_FAILED) {
      return Status::Internal("mmap(shm ring) failed: " +
                              std::string(strerror(errno)));
    }
    std::shared_ptr<ShmRegion> region(new ShmRegion(mem, total, ring_size));
    for (int i = 0; i < 2; ++i) {
      HETKG_RETURN_IF_ERROR(InitRing(region->ring(i), ring_bytes));
    }
    return region;
  }

  ~ShmRegion() { munmap(mem_, total_); }

  Ring* ring(int i) {
    return reinterpret_cast<Ring*>(static_cast<char*>(mem_) + i * ring_size_);
  }

 private:
  ShmRegion(void* mem, size_t total, size_t ring_size)
      : mem_(mem), total_(total), ring_size_(ring_size) {}

  static Status InitRing(Ring* ring, size_t capacity) {
    pthread_mutexattr_t ma;
    pthread_mutexattr_init(&ma);
    pthread_mutexattr_setpshared(&ma, PTHREAD_PROCESS_SHARED);
    pthread_mutexattr_setrobust(&ma, PTHREAD_MUTEX_ROBUST);
    if (pthread_mutex_init(&ring->mu, &ma) != 0) {
      pthread_mutexattr_destroy(&ma);
      return Status::Internal("pthread_mutex_init(pshared) failed");
    }
    pthread_mutexattr_destroy(&ma);

    pthread_condattr_t ca;
    pthread_condattr_init(&ca);
    pthread_condattr_setpshared(&ca, PTHREAD_PROCESS_SHARED);
    pthread_condattr_setclock(&ca, CLOCK_MONOTONIC);
    const bool cond_ok = pthread_cond_init(&ring->readable, &ca) == 0 &&
                         pthread_cond_init(&ring->writable, &ca) == 0;
    pthread_condattr_destroy(&ca);
    if (!cond_ok) {
      return Status::Internal("pthread_cond_init(pshared) failed");
    }
    ring->head = 0;
    ring->tail = 0;
    ring->closed = 0;
    ring->capacity = capacity;
    return Status::OK();
  }

  void* mem_;
  size_t total_;
  size_t ring_size_;
};

namespace {

/// Streams `n` bytes into the ring, chunked under backpressure.
/// Returns false when the ring closes (or the reader stalls past the
/// mid-frame deadline) before everything is written. `stalls`, when
/// non-null, counts full-ring waits (the shm backpressure signal).
bool RingWrite(Ring* ring, const char* src, uint64_t n,
               std::atomic<uint64_t>* stalls) {
  uint64_t written = 0;
  if (!ring->Lock()) return false;
  while (written < n) {
    if (ring->closed) {
      ring->Unlock();
      return false;
    }
    const uint64_t space = ring->capacity - (ring->tail - ring->head);
    if (space == 0) {
      if (stalls != nullptr) {
        stalls->fetch_add(1, std::memory_order_relaxed);
      }
      const timespec deadline = DeadlineAfterMs(kMidFrameStallMs);
      const int rc =
          pthread_cond_timedwait(&ring->writable, &ring->mu, &deadline);
      if (rc == ETIMEDOUT) {
        ring->Unlock();
        return false;
      }
      if (rc == EOWNERDEAD) {
        pthread_mutex_consistent(&ring->mu);
        ring->closed = 1;
      }
      continue;
    }
    const uint64_t chunk = std::min(space, n - written);
    ring->CopyIn(ring->tail, src + written, chunk);
    ring->tail += chunk;
    written += chunk;
    pthread_cond_broadcast(&ring->readable);
  }
  ring->Unlock();
  return true;
}

enum class RingReadResult { kOk, kTimeout, kClosed };

/// Streams `n` bytes out of the ring. `timeout_ms < 0` waits under the
/// generous mid-frame deadline; otherwise the caller's timeout applies
/// to the FIRST byte only (frame-start semantics live in Recv).
RingReadResult RingRead(Ring* ring, char* dst, uint64_t n, int timeout_ms) {
  uint64_t read = 0;
  if (!ring->Lock()) return RingReadResult::kClosed;
  while (read < n) {
    const uint64_t avail = ring->tail - ring->head;
    if (avail == 0) {
      if (ring->closed) {
        ring->Unlock();
        return RingReadResult::kClosed;
      }
      const int wait_ms =
          (read == 0 && timeout_ms >= 0) ? timeout_ms : kMidFrameStallMs;
      const timespec deadline = DeadlineAfterMs(wait_ms);
      const int rc =
          pthread_cond_timedwait(&ring->readable, &ring->mu, &deadline);
      if (rc == ETIMEDOUT) {
        ring->Unlock();
        return (read == 0 && timeout_ms >= 0) ? RingReadResult::kTimeout
                                              : RingReadResult::kClosed;
      }
      if (rc == EOWNERDEAD) {
        pthread_mutex_consistent(&ring->mu);
        ring->closed = 1;
      }
      continue;
    }
    const uint64_t chunk = std::min(avail, n - read);
    ring->CopyOut(ring->head, dst + read, chunk);
    ring->head += chunk;
    read += chunk;
    pthread_cond_broadcast(&ring->writable);
    // After the first byte the frame must complete: switch to the
    // internal stall deadline for the remainder.
    timeout_ms = -1;
  }
  ring->Unlock();
  return RingReadResult::kOk;
}

void RingClose(Ring* ring) {
  if (!ring->Lock()) return;
  ring->closed = 1;
  pthread_cond_broadcast(&ring->readable);
  pthread_cond_broadcast(&ring->writable);
  ring->Unlock();
}

}  // namespace

Result<std::pair<std::unique_ptr<ShmRingChannel>,
                 std::unique_ptr<ShmRingChannel>>>
ShmRingChannel::CreatePair(size_t ring_bytes) {
  HETKG_ASSIGN_OR_RETURN(std::shared_ptr<ShmRegion> region,
                         ShmRegion::Create(ring_bytes));
  std::unique_ptr<ShmRingChannel> a(new ShmRingChannel(region, 0));
  std::unique_ptr<ShmRingChannel> b(new ShmRingChannel(region, 1));
  return std::make_pair(std::move(a), std::move(b));
}

ShmRingChannel::ShmRingChannel(std::shared_ptr<ShmRegion> region, int side)
    : region_(std::move(region)), side_(side) {}

// The destructor only drops this process's mapping reference: the
// rings stay usable by the peer process, and an unused endpoint (each
// side of the fork keeps one of the pair) must not tear them down.
ShmRingChannel::~ShmRingChannel() = default;

bool ShmRingChannel::Send(std::string_view frame) {
  if (frame.size() > kMaxFrameBytes) return false;
  Ring* ring = region_->ring(side_);  // Side i writes ring i.
  const uint64_t len = frame.size();
  std::atomic<uint64_t>* stalls =
      stats_ != nullptr ? &stats_->send_stalls : nullptr;
  if (!RingWrite(ring, reinterpret_cast<const char*>(&len), 8, stalls)) {
    return false;
  }
  if (len != 0 && !RingWrite(ring, frame.data(), len, stalls)) return false;
  RecordSend(frame.size());
  return true;
}

RecvStatus ShmRingChannel::Recv(std::string* frame, int timeout_ms) {
  Ring* ring = region_->ring(1 - side_);  // Side i reads ring 1-i.
  uint64_t len = 0;
  switch (RingRead(ring, reinterpret_cast<char*>(&len), 8, timeout_ms)) {
    case RingReadResult::kTimeout:
      return RecvStatus::kTimeout;
    case RingReadResult::kClosed:
      return RecvStatus::kClosed;
    case RingReadResult::kOk:
      break;
  }
  if (len > kMaxFrameBytes) return RecvStatus::kClosed;  // Corrupt stream.
  frame->resize(len);
  if (len != 0 &&
      RingRead(ring, frame->data(), len, -1) != RingReadResult::kOk) {
    return RecvStatus::kClosed;
  }
  RecordRecv(len);
  return RecvStatus::kOk;
}

void ShmRingChannel::Close() {
  RingClose(region_->ring(0));
  RingClose(region_->ring(1));
}

}  // namespace hetkg::net
